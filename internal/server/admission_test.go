package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/engine"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/stream"
)

func admissionModel(t testing.TB) *core.Model {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	return core.MustNew(cfg)
}

// gatedServer builds a server with admission enabled and the cost model
// replaced by a fixed estimate, so overload is deterministic: any
// non-critical request sheds when est exceeds its class budget.
func gatedServer(t testing.TB, est time.Duration) *Server {
	t.Helper()
	s := New(admissionModel(t))
	t.Cleanup(s.Close)
	s.EnableAdmission(AdmissionConfig{BudgetStandard: 100 * time.Millisecond, BudgetSheddable: 10 * time.Millisecond})
	s.gate.Load().estimator = func(*routeGate) time.Duration { return est }
	return s
}

func classedReq(t testing.TB, s *Server, class string, obs []Observation) *httptest.ResponseRecorder {
	t.Helper()
	body := ObserveRequest{Observations: obs}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/observe", marshalBody(t, body))
	if class != "" {
		req.Header.Set(control.ClassHeader, class)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func marshalBody(t testing.TB, v any) *strings.Reader {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(buf))
}

func decodeBody(t testing.TB, w *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decode body %q: %v", w.Body.String(), err)
	}
}

func oneObs(u string) []Observation {
	return []Observation{{User: u, Service: "svc", Value: 1.5}}
}

// TestAdmissionShedContract pins the shed response shape (satellite:
// every shed carries Retry-After and X-Amf-Shed-Reason) and the class
// contract at the HTTP layer: critical always passes, standard and
// sheddable shed when the predicted wait exceeds their budget, and the
// default class (no header, or an unknown value) is standard.
func TestAdmissionShedContract(t *testing.T) {
	s := gatedServer(t, 30*time.Second) // over every budget

	if w := classedReq(t, s, "critical", oneObs("u1")); w.Code != http.StatusOK {
		t.Fatalf("critical: status %d, want 200: %s", w.Code, w.Body.String())
	}
	for _, class := range []string{"", "standard", "sheddable", "bogus-class"} {
		w := classedReq(t, s, class, oneObs("u2"))
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("class %q: status %d, want 429: %s", class, w.Code, w.Body.String())
		}
		if got := w.Header().Get(ShedReasonHeader); got != shedReasonBudget {
			t.Fatalf("class %q: shed reason %q, want %q", class, got, shedReasonBudget)
		}
		ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("class %q: Retry-After %q, want integer >= 1", class, w.Header().Get("Retry-After"))
		}
		// 30s estimate should surface as a 30s retry hint, not the floor.
		if ra != 30 {
			t.Fatalf("class %q: Retry-After %d, want 30 (ceil of estimate)", class, ra)
		}
	}

	// Below-budget estimate admits everything again.
	s.gate.Load().estimator = func(*routeGate) time.Duration { return time.Millisecond }
	for _, class := range []string{"critical", "standard", "sheddable"} {
		if w := classedReq(t, s, class, oneObs("u3")); w.Code != http.StatusOK {
			t.Fatalf("calm %s: status %d, want 200: %s", class, w.Code, w.Body.String())
		}
	}
}

// TestAdmissionDisabledIsInert: without EnableAdmission the gate is a
// nil pointer — classed requests flow through untouched and the
// admission metric families expose zeros.
func TestAdmissionDisabledIsInert(t *testing.T) {
	s := testServer(t)
	t.Cleanup(s.Close)
	if s.AdmissionEnabled() {
		t.Fatal("admission enabled on a fresh server")
	}
	if w := classedReq(t, s, "sheddable", oneObs("u1")); w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", w.Code, w.Body.String())
	}
	tm := scrapeMetrics(t, s)
	if v := metricValue(t, tm, "amf_admission_enabled", "", ""); v != 0 {
		t.Fatalf("amf_admission_enabled = %v, want 0", v)
	}
	if v := metricValue(t, tm, "amf_admission_requests_total", "class", "sheddable"); v != 0 {
		t.Fatalf("requests counted while disabled: %v", v)
	}
}

// TestAdmissionCriticalNeverShed is the satellite-3 stress test: under
// forced overload, with concurrent critical and sheddable traffic plus
// live config overrides and metrics scrapes racing the gate, every
// critical request succeeds and every sheddable request sheds. Run
// under -race this also proves the gate's hot path is data-race free.
func TestAdmissionCriticalNeverShed(t *testing.T) {
	s := gatedServer(t, time.Hour) // absurdly overloaded, forever

	const workers = 8
	const perWorker = 60
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker+2)
	for w := 0; w < workers; w++ {
		class := "critical"
		want := http.StatusOK
		if w%2 == 1 {
			class = "sheddable"
			want = http.StatusTooManyRequests
		}
		wg.Add(1)
		go func(id int, class string, want int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := classedReq(t, s, class, oneObs(fmt.Sprintf("u%d", id)))
				if rec.Code != want {
					errs <- fmt.Errorf("%s request got %d, want %d: %s", class, rec.Code, want, rec.Body.String())
					return
				}
			}
		}(w, class, want)
	}
	// Race live overrides and scrapes against the request storm.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			hr := "1.0"
			if i%2 == 0 {
				hr = "2.0"
			}
			body := ConfigUpdateRequest{Set: map[string]string{"admission.headroom": hr}}
			req := httptest.NewRequest(http.MethodPut, "/api/v1/config", marshalBody(t, body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("config PUT got %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if _, err := obs.ParseMetrics(rec.Body); err != nil {
				errs <- fmt.Errorf("metrics scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.admShed[control.Critical].Load(); got != 0 {
		t.Fatalf("critical sheds = %d, want 0", got)
	}
	wantShed := int64(workers / 2 * perWorker)
	if got := s.admShed[control.Sheddable].Load(); got != wantShed {
		t.Fatalf("sheddable sheds = %d, want %d", got, wantShed)
	}
	tm := scrapeMetrics(t, s)
	if v := metricValue(t, tm, "amf_admission_shed_total", "class", "critical"); v != 0 {
		t.Fatalf("amf_admission_shed_total{class=critical} = %v, want 0", v)
	}
	if v := metricValue(t, tm, "amf_admission_shed_reasons_total", "reason", "slo_budget"); int64(v) != wantShed {
		t.Fatalf("slo_budget reason count = %v, want %d", v, wantShed)
	}
}

// TestShedAccountingFold is the satellite-2 regression test: the
// amf_admission_shed_total{class="sheddable"} series must fold the
// engine's queue-level losses (watermark refusals AND drop-oldest/new
// churn) together with the gate's own refusals, so queue loss is
// visible as sheddable-class shed instead of hiding in
// amf_engine_dropped_total.
func TestShedAccountingFold(t *testing.T) {
	eng := engine.New(admissionModel(t), engine.Config{
		QueueSize:       8,
		IngestShards:    1,
		PublishInterval: time.Hour,
		PublishEvery:    1 << 30,
	})
	s := NewWithEngine(eng)
	t.Cleanup(s.Close)
	s.EnableAdmission(AdmissionConfig{})
	s.gate.Load().estimator = func(*routeGate) time.Duration { return time.Hour }

	// One gate shed at the HTTP layer.
	if w := classedReq(t, s, "sheddable", oneObs("u1")); w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}

	// Engine-level losses: pin the sheddable watermark to its floor so
	// class refusals trigger, then hammer critical enqueues on the tiny
	// single-shard queue until drop-oldest churn shows. The writer
	// drains concurrently, so loop until both counters move.
	wm, ok := eng.Control().Lookup("engine.admit_sheddable_watermark")
	if !ok {
		t.Fatal("sheddable watermark tunable not registered")
	}
	if err := wm.SetString("0.05", control.SourceOverride); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := eng.Stats()
		if st.ShedSheddable > 0 && st.Dropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine losses did not trigger: %+v", st)
		}
		for i := 0; i < 64; i++ {
			// Critical enqueues fill the tiny queue and churn drop-oldest;
			// sheddable enqueues hit the pinned watermark and are refused.
			eng.Enqueue(stream.Sample{User: 0, Service: i % 8, Value: 1})
			eng.EnqueueClass(stream.Sample{User: 0, Service: i % 8, Value: 1}, control.Sheddable)
		}
	}

	st := eng.Stats()
	gateShed := s.admShed[control.Sheddable].Load()
	floor := float64(gateShed + st.ShedSheddable + st.Dropped)

	tm := scrapeMetrics(t, s)
	got := metricValue(t, tm, "amf_admission_shed_total", "class", "sheddable")
	// Counters are monotone and the writer keeps running, so the scrape
	// can only read >= the components sampled just before it.
	if got < floor {
		t.Fatalf("amf_admission_shed_total{class=sheddable} = %v, want >= %v (gate %d + engine shed %d + dropped %d)",
			got, floor, gateShed, st.ShedSheddable, st.Dropped)
	}
	if got < 3 {
		t.Fatalf("fold too small to prove anything: %v (need gate + shed + drop contributions)", got)
	}
	if v := metricValue(t, tm, "amf_admission_shed_total", "class", "critical"); v != 0 {
		t.Fatalf("critical shed series = %v, want 0", v)
	}
}

// TestConfigAPI covers GET/PUT /api/v1/config: listing includes engine
// and gate tunables with bounds and source, overrides apply and pin,
// out-of-bounds and unknown names error without blocking the valid
// entries of the same request (partial apply, 400).
func TestConfigAPI(t *testing.T) {
	s := gatedServer(t, time.Millisecond)

	w := doReq(t, s, http.MethodGet, "/api/v1/config", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET config: status %d: %s", w.Code, w.Body.String())
	}
	var list ConfigResponse
	decodeBody(t, w, &list)
	byName := map[string]TunableInfo{}
	for _, ti := range list.Tunables {
		byName[ti.Name] = ti
	}
	for _, name := range []string{
		"engine.publish_interval", "engine.publish_every", "engine.ingest_batch_cap",
		"engine.replay_per_batch", "engine.admit_standard_watermark", "engine.admit_sheddable_watermark",
		"admission.budget_standard", "admission.budget_sheddable", "admission.headroom",
	} {
		ti, ok := byName[name]
		if !ok {
			t.Fatalf("tunable %s missing from GET /api/v1/config", name)
		}
		if ti.Min == "" || ti.Max == "" || ti.Help == "" || ti.Kind == "" {
			t.Fatalf("tunable %s incompletely described: %+v", name, ti)
		}
	}
	if src := byName["admission.budget_standard"].Source; src != "flag" {
		t.Fatalf("budget source %q, want flag", src)
	}

	// Valid override applies and pins.
	put := func(set map[string]string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPut, "/api/v1/config", marshalBody(t, ConfigUpdateRequest{Set: set}))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}
	rec := put(map[string]string{"admission.headroom": "2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT: status %d: %s", rec.Code, rec.Body.String())
	}
	var upd ConfigUpdateResponse
	decodeBody(t, rec, &upd)
	if upd.Applied["admission.headroom"] != "2" {
		t.Fatalf("applied = %v", upd.Applied)
	}
	if got := s.gate.Load().headroom.Load(); got != 2 {
		t.Fatalf("headroom after PUT = %v, want 2", got)
	}
	w = doReq(t, s, http.MethodGet, "/api/v1/config", nil)
	decodeBody(t, w, &list)
	for _, ti := range list.Tunables {
		if ti.Name == "admission.headroom" && ti.Source != "override" {
			t.Fatalf("source after override = %q, want override", ti.Source)
		}
	}

	// Partial apply: one valid, one out-of-bounds, one unknown → 400,
	// valid entry still took effect.
	rec = put(map[string]string{
		"admission.headroom":        "4",
		"admission.budget_standard": "1000h", // way past max
		"no.such.tunable":           "1",
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("partial PUT: status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	decodeBody(t, rec, &upd)
	if upd.Applied["admission.headroom"] != "4" {
		t.Fatalf("valid entry not applied: %+v", upd)
	}
	if len(upd.Errors) != 2 {
		t.Fatalf("errors = %v, want 2 entries", upd.Errors)
	}
	if got := s.gate.Load().headroom.Load(); got != 4 {
		t.Fatalf("headroom after partial PUT = %v, want 4", got)
	}

	// Empty set is a 400.
	if rec := put(nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty PUT: status %d, want 400", rec.Code)
	}
}

// TestAdaptationMovesTunables wires the epoch controller through the
// server's own signals: forced gate sheds push the rejection rate past
// the high threshold, and one controller epoch widens the registered
// engine tunables; calm epochs relax them back toward baseline. Also
// checks the amf_control_* families land on /metrics and that
// ShedRate() prefers the controller's epoch rate.
func TestAdaptationMovesTunables(t *testing.T) {
	s := gatedServer(t, time.Hour)
	s.StartAdaptation(AdaptationConfig{Epoch: time.Hour}) // ticker idle; epochs driven by hand
	c := s.Controller()
	if c == nil {
		t.Fatal("controller not started")
	}

	ctl := s.eng.Control()
	pub, _ := ctl.Lookup("engine.publish_interval")
	wmShed, _ := ctl.Lookup("engine.admit_sheddable_watermark")
	basePub := pub.Float()
	baseWM := wmShed.Float()

	// Epoch 1: all sheddable traffic sheds → rate 1.0 → overloaded.
	for i := 0; i < 50; i++ {
		if w := classedReq(t, s, "sheddable", oneObs("u")); w.Code != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", w.Code)
		}
	}
	c.RunEpoch()
	if got := pub.Float(); got <= basePub {
		t.Fatalf("publish interval %v not widened from %v", got, basePub)
	}
	if got := wmShed.Float(); got >= baseWM {
		t.Fatalf("sheddable watermark %v not lowered from %v", got, baseWM)
	}
	if got := c.RejectionRate(); got < 0.5 {
		t.Fatalf("rejection rate %v, want ~1.0", got)
	}
	if got := s.ShedRate(); got != c.RejectionRate() {
		t.Fatalf("ShedRate %v != controller rate %v", got, c.RejectionRate())
	}

	// Calm epochs: only admitted traffic → relax back toward baseline.
	s.gate.Load().estimator = func(*routeGate) time.Duration { return time.Millisecond }
	widened := pub.Float()
	for i := 0; i < 50; i++ {
		if w := classedReq(t, s, "sheddable", oneObs("u")); w.Code != http.StatusOK {
			t.Fatalf("calm status %d, want 200", w.Code)
		}
	}
	c.RunEpoch()
	if got := pub.Float(); got >= widened {
		t.Fatalf("publish interval %v did not relax from %v", got, widened)
	}

	tm := scrapeMetrics(t, s)
	if v := metricValue(t, tm, "amf_control_epochs_total", "", ""); v < 2 {
		t.Fatalf("amf_control_epochs_total = %v, want >= 2", v)
	}
	fam, ok := tm.Families["amf_control_tunable"]
	if !ok || len(fam.Samples) == 0 {
		t.Fatal("amf_control_tunable family missing from /metrics")
	}
	if v := metricValue(t, tm, "amf_control_epoch_adjustments_total", "tunable", "engine.publish_interval"); v < 2 {
		t.Fatalf("publish_interval adjustments = %v, want >= 2 (widen + relax)", v)
	}
}

// BenchmarkAdmissionGate measures the per-request cost of an admission
// decision on the admitted path (class parse, cached-quantile estimate,
// occupancy + budget checks) — the overhead every gated route pays once
// admission is on.
func BenchmarkAdmissionGate(b *testing.B) {
	s := New(admissionModel(b))
	b.Cleanup(s.Close)
	s.EnableAdmission(AdmissionConfig{})
	g := s.gate.Load()
	rt := &routeGate{hist: s.httpHist.With("bench")}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/observe", nil)
	req.Header.Set(control.ClassHeader, "standard")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := g.decide(rt, req); !v.admit {
			b.Fatal("idle request shed")
		}
	}
}

// --- helpers ---------------------------------------------------------------

func scrapeMetrics(t testing.TB, s *Server) *obs.TextMetrics {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	tm, err := obs.ParseMetrics(rec.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return tm
}

// metricValue returns the value of the named family's sample matching
// label==value ("" label matches the first sample).
func metricValue(t testing.TB, tm *obs.TextMetrics, family, label, value string) float64 {
	t.Helper()
	fam, ok := tm.Families[family]
	if !ok {
		t.Fatalf("family %s missing from /metrics", family)
	}
	for _, sm := range fam.Samples {
		if label == "" || sm.Labels[label] == value {
			return sm.Value
		}
	}
	t.Fatalf("family %s has no sample with %s=%q", family, label, value)
	return 0
}
