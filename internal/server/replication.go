package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/registry"
	"github.com/qoslab/amf/internal/store"
)

// This file is the control plane of WAL-shipping replication. A leader
// (any server with a durable store attached) serves its log over
// GET /api/v1/replicate/wal as framed records — the on-disk framing
// verbatim, so every shipped record carries the CRC it had on the
// leader's disk. A follower (StartFollower) bootstraps from the leader's
// ETag'd snapshot, tails that endpoint, and applies entries through the
// same pipeline crash recovery uses (walApplier). Followers reject
// direct writes with 503 + an X-Amf-Leader pointer; reads are served
// from the follower's own published view and may lag the leader by the
// shipping delay (amf_replication_lag_seconds).
//
// Failover follows the shared-storage model: a follower started with a
// LeaderData directory is promoted (POST /api/v1/promote) by opening the
// dead leader's durable directory and running the full recovery protocol
// — checkpoint restore plus WAL replay to tail. Every sample the old
// leader acked under -fsync always is in that log, so promotion loses
// nothing acked. Without LeaderData promotion still works but serves the
// tailed in-memory state (the shipping delay becomes a loss window).

// replPollTick is how often long-polling replication handlers re-check
// the WAL tail and the server's closed flag; it bounds how long a
// graceful shutdown waits on an idle stream.
const replPollTick = 25 * time.Millisecond

const (
	defaultReplWait     = 5 * time.Second
	maxReplWait         = 30 * time.Second
	defaultReplMaxBytes = 4 << 20
)

// ClusterStatusResponse is the GET /api/v1/cluster/status body.
type ClusterStatusResponse struct {
	// Role is "leader" (accepts writes; serves the replication stream
	// when durable) or "follower" (read-only replica tailing a leader).
	Role string `json:"role"`
	// Leader is the leader base URL a follower is tailing.
	Leader string `json:"leader,omitempty"`
	// WALSeq is the last journaled sequence number (leader, durable).
	WALSeq uint64 `json:"wal_seq"`
	// AppliedSeq is the last replicated sequence number applied to the
	// local model (follower).
	AppliedSeq uint64 `json:"applied_seq"`
	// LagSeconds is how long this follower has continuously been behind
	// the leader's WAL tail (0 when caught up).
	LagSeconds float64 `json:"lag_seconds"`
	// Streams is the number of replication streams currently being
	// served to followers.
	Streams int64 `json:"replication_streams"`
	// Durable reports whether a durable store is attached.
	Durable bool `json:"durable"`
	// Epoch is the durable directory's claim epoch (see store fencing):
	// of two servers both claiming leadership over the same directory,
	// the HIGHER epoch opened it more recently and is the survivor. The
	// gateway uses this to demote stale ex-leaders after a failover.
	Epoch uint64 `json:"epoch,omitempty"`
	// Fenced reports that this server's durable store lost the directory
	// claim — it no longer accepts writes regardless of role.
	Fenced bool `json:"fenced,omitempty"`
	// ShedRate is the fraction of admission-considered work this server
	// refused over its last measurement window (the epoch controller's
	// rate when adaptation runs, else the gate's rolling window). The
	// gateway treats a group whose replicas report a high rate as
	// saturated and sheds sheddable traffic at the edge.
	ShedRate float64 `json:"shed_rate,omitempty"`
}

// replicationRoutes registers the cluster control plane; called from
// routes().
func (s *Server) replicationRoutes() {
	s.handle("GET /api/v1/replicate/wal", s.handleReplicateWAL)
	s.handle("GET /api/v1/cluster/status", s.handleClusterStatus)
	s.handle("POST /api/v1/promote", s.handlePromote)
	s.handle("POST /api/v1/demote", s.handleDemote)
	s.handle("POST /api/v1/cluster/leader", s.handleSetLeader)
}

// rejectFollowerWrite answers write requests with 503 while the server
// is a follower, pointing the client at the leader. Returns true when
// the request was rejected. 503 (not 4xx) on purpose: the client did
// nothing wrong, and a gateway-aware client retries 503s against the
// (possibly newly promoted) leader.
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if !s.follower.Load() {
		return false
	}
	// A demoted ex-leader has no tailer; the gateway told us who won.
	if l, _ := s.demotedTo.Load().(string); l != "" {
		w.Header().Set("X-Amf-Leader", l)
	} else if rp := s.repl; rp != nil {
		if l := rp.Leader(); l != "" {
			w.Header().Set("X-Amf-Leader", l)
		}
	}
	// Role changes resolve on probe/failover timescales, not request
	// timescales: tell well-behaved clients to back off a beat.
	w.Header().Set("Retry-After", "1")
	w.Header().Set(ShedReasonHeader, "follower")
	s.writeError(w, http.StatusServiceUnavailable, "follower: writes must go to the leader")
	return true
}

// handleReplicateWAL streams WAL records with seq > from to a follower.
// Long-poll: when the log has nothing shippable past from, the handler
// subscribes to the WAL's commit notifications and wakes the moment the
// commit index advances — a follower sees new records within the fsync
// latency, not the poll tick — bounded by wait_ms (capped at 30s) with
// the old poll tick kept as a fallback timeout. The response carries
// X-Amf-Wal-Seq = the leader's current shippable tail (the durable
// commit index under fsync=group), which is how followers measure lag.
// Streams are tracked so graceful shutdown can drain them
// (DrainReplication); a follower disconnecting mid-stream is logged,
// never fatal.
func (s *Server) handleReplicateWAL(w http.ResponseWriter, r *http.Request) {
	if s.durable == nil {
		s.countError(w, http.StatusNotImplemented, "replication requires a durable store (-data-dir)")
		return
	}
	if s.follower.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "follower: replicate from the leader")
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		s.countError(w, http.StatusBadRequest, "invalid from: %v", err)
		return
	}
	wait := defaultReplWait
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 0 {
			s.countError(w, http.StatusBadRequest, "invalid wait_ms %q", ms)
			return
		}
		wait = min(time.Duration(n)*time.Millisecond, maxReplWait)
	}
	maxBytes := int64(defaultReplMaxBytes)
	if mb := q.Get("max_bytes"); mb != "" {
		n, err := strconv.ParseInt(mb, 10, 64)
		if err != nil || n < 0 {
			s.countError(w, http.StatusBadRequest, "invalid max_bytes %q", mb)
			return
		}
		maxBytes = n
	}

	s.replStreams.Add(1)
	s.replActive.Add(1)
	defer func() {
		s.replActive.Add(-1)
		s.replStreams.Done()
	}()

	wal := s.durable.WAL()
	// shipTail is the newest sequence number this poll may ship: the
	// durable commit index under fsync=group/always (shipping records
	// whose covering fsync has not landed would let a follower get ahead
	// of a crashed leader), the appended tail under the lossy policies.
	shipTail := wal.DurableSeq
	commits, cancel := wal.SubscribeCommits()
	defer cancel()
	deadline := time.Now().Add(wait)
	for shipTail() <= from && time.Now().Before(deadline) && !s.closed.Load() {
		select {
		case <-r.Context().Done():
			return
		case <-commits:
			// The commit index advanced (or the WAL hit a terminal state,
			// which the loop condition re-checks): answer now instead of
			// sleeping out the poll tick.
		case <-time.After(replPollTick):
			// Fallback timeout: notifications are coalesced best-effort,
			// so never trust them exclusively.
		}
	}
	tail := shipTail()
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Amf-Wal-Seq", strconv.FormatUint(tail, 10))
	s.countStatus(http.StatusOK)
	last, err := wal.StreamSince(from, w, maxBytes)
	if err != nil {
		// Most commonly the follower hung up mid-stream; it will re-poll
		// from its last applied sequence, so nothing is lost.
		s.replErrors.Add(1)
		s.log.Warn("replication stream interrupted",
			"from", from, "last_shipped", last, "err", err)
	}
}

// DrainReplication waits for in-flight replication streams to finish,
// up to timeout. Call Close first: it flips the closed flag the
// long-poll loops watch, so idle streams exit within one poll tick.
// Returns false if streams were still active at the deadline (logged;
// the shutdown proceeds regardless — followers recover by re-polling).
func (s *Server) DrainReplication(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		s.replStreams.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		s.log.Warn("replication streams still active at shutdown deadline",
			"active", s.replActive.Load(), "timeout", timeout)
		return false
	}
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	resp := ClusterStatusResponse{
		Role: "leader", Durable: s.durable != nil,
		Streams: s.replActive.Load(), ShedRate: s.ShedRate(),
	}
	if s.durable != nil {
		resp.WALSeq = s.durable.WAL().LastSeq()
		resp.Epoch = s.durable.Epoch()
		resp.Fenced = s.durable.Fenced()
	}
	if s.follower.Load() {
		resp.Role = "follower"
		if rp := s.repl; rp != nil {
			resp.Leader = rp.Leader()
			resp.AppliedSeq = rp.AppliedSeq()
			resp.LagSeconds = rp.Lag().Seconds()
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handlePromote flips a follower into a leader (see Promote).
func (s *Server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	rs, err := s.Promote()
	if err != nil {
		s.countError(w, http.StatusConflict, "promote: %v", err)
		return
	}
	resp := map[string]any{"status": "promoted"}
	if s.durable != nil {
		resp["wal_seq"] = s.durable.WAL().LastSeq()
		resp["checkpoint_seq"] = rs.CheckpointSeq
		resp["replayed_entries"] = rs.Entries
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSetLeader re-points a follower's tailer at a new leader after a
// failover. The follower keeps its applied sequence: the new leader was
// promoted from the same WAL lineage, so sequence numbers stay valid.
func (s *Server) handleSetLeader(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Leader string `json:"leader"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Leader == "" {
		s.countError(w, http.StatusBadRequest, "leader is required")
		return
	}
	rp := s.repl
	if !s.follower.Load() || rp == nil {
		s.countError(w, http.StatusConflict, "not a follower")
		return
	}
	rp.SetLeader(req.Leader)
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "leader updated", "leader": req.Leader})
}

// FollowerConfig configures StartFollower.
type FollowerConfig struct {
	// Leader is the leader's base URL (required).
	Leader string
	// LeaderData is the leader's durable data directory, reachable from
	// this process (shared or replicated storage). When set, promotion
	// recovers from it — checkpoint restore + WAL replay to tail — so no
	// sample the leader acked durably is lost. When empty, promotion
	// serves the tailed in-memory state (best effort).
	LeaderData string
	// StoreOptions tunes the store opened from LeaderData at promotion.
	StoreOptions store.Options
	// WaitMS is the long-poll window the follower requests (default 5000).
	WaitMS int
	// MaxBytes bounds one replication response (default 4 MiB).
	MaxBytes int64
	// RetryInterval is the pause after a failed poll (default 200ms).
	RetryInterval time.Duration
	// HTTP is the client used for snapshot and WAL fetches; nil gets a
	// default with no overall timeout (long-polls hold connections open).
	HTTP *http.Client
}

// Replicator tails a leader's WAL into the local server. Construct via
// StartFollower.
type Replicator struct {
	s   *Server
	cfg FollowerConfig

	leader atomic.Value // string: current leader base URL
	http   *http.Client

	seq        atomic.Uint64 // last sequence applied locally
	leaderSeq  atomic.Uint64 // leader tail from the last poll
	behindNano atomic.Int64  // when we first fell behind; 0 = caught up

	records    atomic.Int64
	bootstraps atomic.Int64
	errs       atomic.Int64

	etag string // snapshot validator from the last bootstrap (tail goroutine only)

	// Lifecycle: lifeMu guards stop/stopped so the tail loop can be
	// relaunched after Stop — the failed-promotion recovery path. Each
	// relaunch gets a fresh stop channel.
	lifeMu  sync.Mutex
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// StartFollower puts the server in follower mode: it bootstraps state
// from the leader's snapshot, then tails the leader's WAL continuously.
// Must be called before serving traffic, at most once, and is mutually
// exclusive with AttachDurable — a follower's durability IS the leader's
// log (replicated records are already durable there; journaling them
// again would double them on promotion).
func (s *Server) StartFollower(cfg FollowerConfig) (*Replicator, error) {
	if s.durable != nil {
		return nil, errors.New("server: follower mode is incompatible with a local durable store")
	}
	if s.repl != nil {
		return nil, errors.New("server: follower already started")
	}
	if cfg.Leader == "" {
		return nil, errors.New("server: follower needs a leader URL")
	}
	if cfg.WaitMS <= 0 {
		cfg.WaitMS = int(defaultReplWait / time.Millisecond)
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = defaultReplMaxBytes
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 200 * time.Millisecond
	}
	rp := &Replicator{s: s, cfg: cfg, http: cfg.HTTP, stop: make(chan struct{})}
	if rp.http == nil {
		rp.http = &http.Client{}
	}
	rp.leader.Store(strings.TrimRight(cfg.Leader, "/"))

	if err := rp.bootstrap(context.Background()); err != nil {
		return nil, err
	}
	s.repl = rp
	s.follower.Store(true)
	rp.registerMetrics()
	rp.wg.Add(1)
	go rp.tail(rp.stop)
	s.log.Info("follower started",
		"leader", rp.Leader(), "bootstrap_seq", rp.seq.Load())
	return rp, nil
}

// Leader returns the leader base URL currently being tailed.
func (rp *Replicator) Leader() string { return rp.leader.Load().(string) }

// SetLeader re-points the tailer (used after a failover promotes a new
// leader from the same WAL lineage).
func (rp *Replicator) SetLeader(addr string) {
	rp.leader.Store(strings.TrimRight(addr, "/"))
}

// AppliedSeq returns the last WAL sequence number applied locally.
func (rp *Replicator) AppliedSeq() uint64 { return rp.seq.Load() }

// Lag returns how long the follower has continuously been behind the
// leader's WAL tail (0 when caught up as of the last poll).
func (rp *Replicator) Lag() time.Duration {
	since := rp.behindNano.Load()
	if since == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - since)
}

// Stop halts the tail loop and waits for it to exit. Idempotent; called
// by Promote and by Server.Close.
func (rp *Replicator) Stop() {
	rp.lifeMu.Lock()
	if !rp.stopped {
		rp.stopped = true
		close(rp.stop)
	}
	rp.lifeMu.Unlock()
	rp.wg.Wait()
}

// restart relaunches the tail loop after Stop — the failed-promotion
// recovery path. No-op while the tailer is still running, or once the
// server itself is closing.
func (rp *Replicator) restart() {
	rp.lifeMu.Lock()
	defer rp.lifeMu.Unlock()
	if !rp.stopped || rp.s.closed.Load() {
		return
	}
	rp.stopped = false
	rp.stop = make(chan struct{})
	rp.wg.Add(1)
	go rp.tail(rp.stop)
}

func (rp *Replicator) registerMetrics() {
	r := rp.s.reg
	r.GaugeFunc("amf_replication_lag_seconds",
		"How long this follower has continuously been behind the leader's WAL tail (0 = caught up).",
		func() float64 { return rp.Lag().Seconds() })
	r.GaugeFunc("amf_replication_applied_seq",
		"Last WAL sequence number replicated and applied locally.",
		func() float64 { return float64(rp.seq.Load()) })
	r.GaugeFunc("amf_replication_leader_seq",
		"Leader WAL tail observed on the last replication poll.",
		func() float64 { return float64(rp.leaderSeq.Load()) })
	r.CounterFunc("amf_replication_records_total",
		"WAL records received from the leader and applied.", rp.records.Load)
	r.CounterFunc("amf_replication_bootstraps_total",
		"Full snapshot bootstraps from the leader (1 at start; more mean the leader truncated past us).",
		rp.bootstraps.Load)
	r.CounterFunc("amf_replication_errors_total",
		"Failed replication polls (leader unreachable, stream corrupt).", rp.errs.Load)
}

// parseSnapshotETag extracts the covered WAL sequence from a snapshot
// ETag of the form `"seq-N"`. Returns ok=false for the non-durable
// `"view-N"` form — such a snapshot has no WAL position, so it cannot
// anchor replication.
func parseSnapshotETag(etag string) (uint64, bool) {
	etag = strings.Trim(etag, `"`)
	num, found := strings.CutPrefix(etag, "seq-")
	if !found {
		return 0, false
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// bootstrap replaces the local state with the leader's snapshot and
// anchors the tail position at the sequence number its ETag names. The
// previous bootstrap's validator rides If-None-Match: a 304 means the
// leader's checkpoint is the one we already restored, so only the tail
// position resets.
func (rp *Replicator) bootstrap(ctx context.Context) error {
	url := rp.Leader() + "/api/v1/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("server: bootstrap request: %w", err)
	}
	if rp.etag != "" {
		req.Header.Set("If-None-Match", rp.etag)
	}
	resp, err := rp.http.Do(req)
	if err != nil {
		return fmt.Errorf("server: bootstrap from %s: %w", url, err)
	}
	defer resp.Body.Close()
	etag := resp.Header.Get("ETag")
	seq, durable := parseSnapshotETag(etag)
	switch resp.StatusCode {
	case http.StatusNotModified:
		if !durable {
			return fmt.Errorf("server: bootstrap: leader returned 304 with ETag %q", etag)
		}
		rp.seq.Store(seq)
		return nil
	case http.StatusOK:
	default:
		return fmt.Errorf("server: bootstrap from %s: HTTP %d", url, resp.StatusCode)
	}
	if !durable {
		return fmt.Errorf("server: leader snapshot has no WAL position (ETag %q) — the leader must run with a durable store", etag)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("server: bootstrap download: %w", err)
	}
	if err := rp.s.LoadState(data); err != nil {
		return fmt.Errorf("server: bootstrap restore: %w", err)
	}
	rp.etag = etag
	rp.seq.Store(seq)
	rp.bootstraps.Add(1)
	return nil
}

// tail is the follower's poll loop: fetch records past the applied
// sequence, verify and apply them, update lag. On a sequence gap at the
// stream head (the leader checkpointed and truncated past our position)
// it re-bootstraps from the snapshot.
func (rp *Replicator) tail(stop <-chan struct{}) {
	defer rp.wg.Done()
	for {
		select {
		case <-stop:
			return
		default:
		}
		if err := rp.pollOnce(); err != nil {
			rp.errs.Add(1)
			rp.s.log.Warn("replication poll failed", "leader", rp.Leader(), "from", rp.seq.Load(), "err", err)
			select {
			case <-stop:
				return
			case <-time.After(rp.cfg.RetryInterval):
			}
		}
	}
}

// errReplGap signals that the leader's log no longer reaches back to our
// applied sequence; the only recovery is a fresh snapshot bootstrap.
var errReplGap = errors.New("server: replication gap")

func (rp *Replicator) pollOnce() error {
	from := rp.seq.Load()
	url := fmt.Sprintf("%s/api/v1/replicate/wal?from=%d&wait_ms=%d&max_bytes=%d",
		rp.Leader(), from, rp.cfg.WaitMS, rp.cfg.MaxBytes)
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(rp.cfg.WaitMS)*time.Millisecond+10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rp.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("leader %s: HTTP %d", rp.Leader(), resp.StatusCode)
	}
	if hdr := resp.Header.Get("X-Amf-Wal-Seq"); hdr != "" {
		if n, err := strconv.ParseUint(hdr, 10, 64); err == nil {
			rp.leaderSeq.Store(n)
		}
	}

	applied, err := rp.applyStream(from, resp.Body)
	if errors.Is(err, errReplGap) {
		rp.s.log.Warn("leader truncated past our position; re-bootstrapping",
			"applied", applied, "leader", rp.Leader())
		return rp.bootstrap(context.Background())
	}
	if err != nil {
		return err
	}
	// Lag accounting: behind means the leader's tail (as of this poll)
	// is past what we've applied. The gauge reports how long that has
	// been continuously true, so a follower keeping up under constant
	// load reads ~0 while a stalled one reads its outage age.
	if rp.leaderSeq.Load() > rp.seq.Load() {
		rp.behindNano.CompareAndSwap(0, time.Now().UnixNano())
	} else {
		rp.behindNano.Store(0)
	}
	return nil
}

// applyStream decodes framed records from body and applies them through
// the shared recovery pipeline, advancing the applied sequence only for
// entries whose samples have actually been flushed into the engine.
func (rp *Replicator) applyStream(from uint64, body io.Reader) (uint64, error) {
	rr := store.NewRecordReader(body)
	apply, flush := rp.s.walApplier()
	applied := from
	n := 0
	var streamErr error
	for {
		e, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			streamErr = err
			break
		}
		if n == 0 && e.Seq != from+1 {
			if e.Seq > from+1 {
				return applied, errReplGap
			}
			// Records at or below our position (leader replayed from an
			// older segment boundary): already applied, skip.
			if e.Seq <= from {
				continue
			}
		}
		if err := apply(e); err != nil {
			streamErr = err
			break
		}
		applied = e.Seq
		n++
	}
	// Flush before publishing the new position: an entry counts as
	// applied only once its samples are in the engine — otherwise a
	// mid-batch error would skip buffered samples forever.
	flush()
	rp.seq.Store(applied)
	rp.records.Add(int64(n))
	if streamErr != nil {
		return applied, fmt.Errorf("apply replication stream: %w", streamErr)
	}
	return applied, nil
}

// Promote turns a follower into a leader. The tailer stops first; then,
// when the follower was configured with the (dead) leader's data
// directory, the full recovery protocol runs against it — newest
// checkpoint restore plus WAL replay to tail — and the server attaches
// it as its own durable store, continuing the same WAL sequence
// numbering (which is why surviving followers can keep their positions
// and just re-point at us). Only then does the server start accepting
// writes. Without a data directory the tailed in-memory state is served
// as-is.
func (s *Server) Promote() (store.RecoveryStats, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	var rs store.RecoveryStats
	if !s.follower.Load() {
		return rs, errors.New("not a follower")
	}
	// A follower that still holds a durable store is a demoted ex-leader
	// (StartFollower forbids the combination). It can NEVER be promoted
	// in place: its in-memory model carries acked writes from the
	// diverged lineage, and re-opening the shared directory here would
	// bump the claim epoch and fence the legitimate owner — a gateway
	// retrying failover against it would grab the lock in a loop. The
	// only way back is a restart with -role follower.
	if m := s.durable; m != nil {
		if m.Fenced() {
			return rs, errors.New("demoted ex-leader (durable store fenced): restart with -role follower to rejoin")
		}
		return rs, errors.New("durable store already attached")
	}
	rp := s.repl
	if rp != nil {
		rp.Stop()
	}
	if rp != nil && rp.cfg.LeaderData != "" {
		m, err := store.Open(rp.cfg.LeaderData, rp.cfg.StoreOptions)
		if err != nil {
			// Local state is untouched — resume tailing so the replica
			// keeps replicating instead of sitting as a stopped,
			// write-rejecting follower that looks healthy.
			s.resumeFollower(rp, false)
			return rs, fmt.Errorf("open leader data: %w", err)
		}
		// Start recovery from a clean slate. A checkpoint restore replaces
		// the state wholesale anyway, but a log young enough to have no
		// checkpoint replays from record 1 — on top of a model the tailer
		// already trained with those very samples. Resetting first makes
		// promotion exact in both cases: the served state IS the leader's
		// durable state, nothing more.
		blank, err := core.MustNew(s.eng.View().Config()).Snapshot()
		if err != nil {
			m.Close()
			s.resumeFollower(rp, false)
			return rs, fmt.Errorf("reset state: %w", err)
		}
		if err := s.eng.Restore(blank); err != nil {
			m.Close()
			s.resumeFollower(rp, true)
			return rs, fmt.Errorf("reset state: %w", err)
		}
		s.users = registry.New()
		s.services = registry.New()
		rs, err = s.AttachDurable(m)
		if err != nil {
			m.Close()
			s.resumeFollower(rp, true)
			return rs, fmt.Errorf("recover leader data: %w", err)
		}
	}
	s.follower.Store(false)
	s.log.Info("promoted to leader",
		"durable", s.durable != nil,
		"checkpoint_seq", rs.CheckpointSeq, "replayed_entries", rs.Entries)
	return rs, nil
}

// resumeFollower restarts the tail loop after a failed promotion so the
// replica keeps replicating (and keeps its shot at a later promotion)
// instead of being left dead-but-green: still reporting role=follower
// and healthy, but never applying another record. When the failed
// attempt already wiped local state (wiped=true), the applied position
// and snapshot validator reset too — the next successful poll then sees
// a sequence gap and re-bootstraps wholesale from the leader's
// snapshot, which rebuilds consistent state from scratch. (rp.etag is
// safe to touch here: the tail goroutine is stopped.)
func (s *Server) resumeFollower(rp *Replicator, wiped bool) {
	if wiped {
		rp.seq.Store(0)
		rp.etag = ""
	}
	rp.restart()
	s.log.Warn("promotion failed; resumed follower tailing",
		"leader", rp.Leader(), "state_wiped", wiped)
}

// Demote forces this server out of the leader role — the gateway calls
// it (POST /api/v1/demote) when a stale ex-leader reappears after a
// failover promoted a different replica, and the fence watcher calls it
// when the durable directory is claimed by another process. The server
// flips to follower (writes reject with 503 + X-Amf-Leader), and an
// attached durable store is fenced in place: its WAL lineage has
// diverged from the promoted leader's, so appends, checkpoints, and
// truncations must stop before they corrupt the shared directory. A
// demoted ex-leader does NOT rejoin as a live replica automatically —
// its in-memory model may contain acked-but-unreplicated writes no
// longer in any log — so restart it with -role follower to rejoin.
func (s *Server) Demote(leader string) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if leader != "" {
		s.demotedTo.Store(leader)
	}
	if s.follower.Load() {
		// Already a follower: just re-point the tailer, like
		// /api/v1/cluster/leader.
		if rp := s.repl; rp != nil && leader != "" {
			rp.SetLeader(leader)
		}
		return
	}
	s.follower.Store(true)
	if m := s.durable; m != nil {
		m.Fence("demoted, new leader: " + leader)
	}
	s.log.Warn("demoted to follower; restart with -role follower to rejoin the group",
		"leader", leader)
}

// handleDemote is the gateway's split-brain repair hook (see Demote).
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Leader string `json:"leader"`
	}
	_ = json.NewDecoder(r.Body).Decode(&req) // leader is optional
	s.Demote(req.Leader)
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "demoted", "leader": req.Leader})
}
