package server

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/obs/trace"
)

// This file is the server's SLO-gated admission layer and the HTTP face
// of the control plane:
//
//   - a predictive admission gate on the expensive API routes (observe,
//     predict, rank): it parses the request's X-Amf-Slo-Class header,
//     estimates how long the request would wait from live queue state
//     and known per-op latency, and refuses work whose class budget the
//     estimate blows — with a 429, a Retry-After derived from the
//     estimate, and an X-Amf-Shed-Reason header. Critical-class
//     requests are NEVER shed, by construction (the gate admits them
//     before any estimate is computed).
//
//   - GET/PUT /api/v1/config: live inspection and override of every
//     registered tunable (the engine's and the gate's own budgets).
//
//   - StartAdaptation: the epoch controller wired to the server's free
//     signals (gate + engine shed counts, queue-wait p99, in-flight,
//     view staleness), adapting publish cadence, batch sizing, and the
//     sheddable admission watermark within declared bounds.
//
// With admission disabled (the default) the gate costs one atomic
// pointer load + nil check per gated route — BenchmarkPredictPath's 5%
// instrumentation budget still holds.

// ShedReasonHeader names why a request was refused: "slo_budget"
// (predicted wait exceeds the class budget), "queue_watermark" (ingest
// occupancy crossed the class watermark), or — at the gateway —
// "edge_saturation" (target shard group reported saturation).
const ShedReasonHeader = "X-Amf-Shed-Reason"

// Shed reasons emitted by the server gate.
const (
	shedReasonBudget    = "slo_budget"
	shedReasonWatermark = "queue_watermark"
)

// quantileRefresh bounds how often the gate recomputes histogram
// quantiles for its cost model; between refreshes decisions reuse the
// cached values (two atomic loads).
const quantileRefresh = 50 * time.Millisecond

// AdmissionConfig configures EnableAdmission. Budgets are per-class
// predicted-wait ceilings; critical has none (never shed).
type AdmissionConfig struct {
	// BudgetStandard is the predicted-wait budget for standard-class
	// requests. Default 2s.
	BudgetStandard time.Duration
	// BudgetSheddable is the predicted-wait budget for sheddable-class
	// requests. Default 250ms.
	BudgetSheddable time.Duration
	// Headroom scales both budgets (admit while estimate ≤
	// budget×headroom). Default 1.0.
	Headroom float64
}

// admissionGate is the per-server gate state. One instance per
// EnableAdmission call, reached through an atomic pointer so the
// disabled fast path stays branch-plus-load cheap.
type admissionGate struct {
	s *Server

	// Gate tunables, registered on the engine's control registry so the
	// config API and the docs lint see one namespace.
	budgetStandard  *control.Duration
	budgetSheddable *control.Duration
	headroom        *control.Float

	// Engine watermark tunables, for the occupancy check (standard/
	// sheddable; critical has none).
	wmStandard  *control.Float
	wmSheddable *control.Float

	// Cumulative gate accounting (all classes), for the controller's
	// rejection-rate signal and the rolling ShedRate window.
	requests atomic.Int64
	sheds    atomic.Int64

	// Cached engine apply p50 for the cost model (float64 bits),
	// refreshed at most every quantileRefresh.
	applyP50    atomic.Uint64
	lastRefresh atomic.Int64 // UnixNano

	// estimator overrides the cost model in tests (forced-overload
	// invariant tests); nil in production.
	estimator func(rt *routeGate) time.Duration

	// Rolling shed-rate window (see ShedRate).
	rateMu   sync.Mutex
	rateAt   time.Time
	rateReq  int64
	rateShed int64
	rate     atomic.Uint64 // float64 bits
}

// routeGate is the per-route slice of gate state: the route's latency
// histogram (shared with the middleware) and its cached p50.
type routeGate struct {
	hist        *obs.Histogram
	p50         atomic.Uint64 // float64 bits
	lastRefresh atomic.Int64  // UnixNano
}

// verdict is one admission decision.
type verdict struct {
	admit    bool
	class    control.Class
	reason   string
	estimate time.Duration
}

// EnableAdmission switches the SLO admission gate on. Call once, after
// construction and before serving traffic; the gate's budget tunables
// are registered on the engine's control registry (visible in
// GET /api/v1/config and adaptable like any other tunable). Subsequent
// calls are no-ops.
func (s *Server) EnableAdmission(cfg AdmissionConfig) {
	if s.gate.Load() != nil {
		return
	}
	if cfg.BudgetStandard <= 0 {
		cfg.BudgetStandard = 2 * time.Second
	}
	if cfg.BudgetSheddable <= 0 {
		cfg.BudgetSheddable = 250 * time.Millisecond
	}
	if cfg.Headroom <= 0 {
		cfg.Headroom = 1.0
	}
	ctl := s.eng.Control()
	g := &admissionGate{s: s}
	g.budgetStandard = ctl.Duration("admission.budget_standard",
		"Predicted-wait budget for standard-class requests; above budget×headroom the request is shed.",
		cfg.BudgetStandard, cfg.BudgetStandard/64, cfg.BudgetStandard*64, control.SourceFlag)
	g.budgetSheddable = ctl.Duration("admission.budget_sheddable",
		"Predicted-wait budget for sheddable-class requests.",
		cfg.BudgetSheddable, cfg.BudgetSheddable/64, cfg.BudgetSheddable*64, control.SourceFlag)
	g.headroom = ctl.Float("admission.headroom",
		"Multiplier on class budgets (admit while estimate ≤ budget×headroom).",
		cfg.Headroom, 0.05, 16, control.SourceFlag)
	if t, ok := ctl.Lookup("engine.admit_standard_watermark"); ok {
		g.wmStandard, _ = t.(*control.Float)
	}
	if t, ok := ctl.Lookup("engine.admit_sheddable_watermark"); ok {
		g.wmSheddable, _ = t.(*control.Float)
	}
	g.rateAt = time.Now()
	s.gate.Store(g)
	s.log.Info("slo admission enabled",
		"budget_standard", cfg.BudgetStandard,
		"budget_sheddable", cfg.BudgetSheddable,
		"headroom", cfg.Headroom)
}

// AdmissionEnabled reports whether the gate is active.
func (s *Server) AdmissionEnabled() bool { return s.gate.Load() != nil }

// gated wraps a handler with the admission gate. Registered inside the
// observability middleware (s.handle(pattern, s.gated(pattern, h))), so
// shed responses are still counted and timed like any other response.
// Disabled cost: one atomic load and a nil check.
func (s *Server) gated(route string, h http.HandlerFunc) http.HandlerFunc {
	rt := &routeGate{hist: s.httpHist.With(route)}
	return func(w http.ResponseWriter, r *http.Request) {
		g := s.gate.Load()
		if g == nil {
			h(w, r)
			return
		}
		v := g.decide(rt, r)
		if sp := trace.FromContext(r.Context()); sp != nil {
			sp.Annotate("admission_wait_estimate", v.estimate)
			if !v.admit {
				sp.Annotate("admission_shed", 1)
				sp.SetError()
			}
		}
		if !v.admit {
			g.shed(w, v)
			return
		}
		h(w, r)
	}
}

// decide evaluates one request. The order encodes the class contract:
// critical is admitted before any estimate or occupancy is consulted,
// so no cost-model bug can ever shed it.
func (g *admissionGate) decide(rt *routeGate, r *http.Request) verdict {
	class := control.ClassFromHeader(r.Header)
	g.requests.Add(1)
	g.s.admReq[class].Inc()
	if class == control.Critical {
		return verdict{admit: true, class: class}
	}

	est := g.estimate(rt)
	g.s.admWaitEst.ObserveDuration(est)

	// Occupancy check first: it is the engine's own per-class admission
	// surfaced at the HTTP layer, and the knob the epoch controller
	// moves to widen shedding (lowering the sheddable watermark sheds
	// HTTP sheddable traffic here AND queue ingest below).
	var wm *control.Float
	if class == control.Standard {
		wm = g.wmStandard
	} else {
		wm = g.wmSheddable
	}
	if wm != nil {
		st := g.s.eng.Stats()
		if st.QueueCap > 0 && float64(st.QueueLen) >= wm.Load()*float64(st.QueueCap) {
			return verdict{class: class, reason: shedReasonWatermark, estimate: est}
		}
	}

	budget := g.budgetStandard
	if class == control.Sheddable {
		budget = g.budgetSheddable
	}
	if float64(est) > float64(budget.Load())*g.headroom.Load() {
		return verdict{class: class, reason: shedReasonBudget, estimate: est}
	}
	return verdict{admit: true, class: class, estimate: est}
}

// estimate predicts how long this request would wait: queued ingest
// backlog times the engine's per-update apply p50, plus requests
// already in flight times this route's own p50. Quantiles are cached
// and refreshed at most every quantileRefresh, so steady-state
// decisions cost a few atomic loads.
func (g *admissionGate) estimate(rt *routeGate) time.Duration {
	if g.estimator != nil {
		return g.estimator(rt)
	}
	now := time.Now().UnixNano()
	if last := g.lastRefresh.Load(); now-last > int64(quantileRefresh) && g.lastRefresh.CompareAndSwap(last, now) {
		g.applyP50.Store(math.Float64bits(g.s.eng.Metrics().Apply.Quantile(0.5)))
	}
	if last := rt.lastRefresh.Load(); now-last > int64(quantileRefresh) && rt.lastRefresh.CompareAndSwap(last, now) {
		rt.p50.Store(math.Float64bits(rt.hist.Quantile(0.5)))
	}
	backlog := float64(g.s.eng.Stats().QueueLen)
	inflight := float64(g.s.inflight.Value())
	sec := backlog*math.Float64frombits(g.applyP50.Load()) +
		inflight*math.Float64frombits(rt.p50.Load())
	return time.Duration(sec * float64(time.Second))
}

// shed writes the 429 refusal: Retry-After from the wait estimate
// (floor 1s — the client should at least let one publish interval
// pass), the shed reason header, and per-class/per-reason accounting.
func (g *admissionGate) shed(w http.ResponseWriter, v verdict) {
	g.sheds.Add(1)
	g.s.admShed[v.class].Add(1)
	if c, ok := g.s.admReasons[v.reason]; ok {
		c.Inc()
	}
	w.Header().Set("Retry-After", retryAfterSeconds(v.estimate))
	w.Header().Set(ShedReasonHeader, v.reason)
	g.s.writeError(w, http.StatusTooManyRequests,
		"overloaded: %s-class request shed (%s); retry after the indicated delay", v.class, v.reason)
}

// retryAfterSeconds renders a wait estimate as a whole-second
// Retry-After value, minimum 1.
func retryAfterSeconds(est time.Duration) string {
	secs := int64(math.Ceil(est.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// ShedRate reports the fraction of gate-evaluated requests shed over
// the most recent ~1s window. The gateway's probe loop reads it (via
// /api/v1/cluster/status) to decide edge shedding.
func (g *admissionGate) ShedRate() float64 {
	g.rateMu.Lock()
	now := time.Now()
	if now.Sub(g.rateAt) >= time.Second {
		req, shed := g.requests.Load(), g.sheds.Load()
		r := 0.0
		if d := req - g.rateReq; d > 0 {
			r = float64(shed-g.rateShed) / float64(d)
		}
		g.rate.Store(math.Float64bits(r))
		g.rateAt, g.rateReq, g.rateShed = now, req, shed
	}
	g.rateMu.Unlock()
	return math.Float64frombits(g.rate.Load())
}

// ShedRate reports the server's current shed/rejection rate: the epoch
// controller's per-epoch rate when adaptation runs (it folds engine
// queue sheds in), else the gate's rolling window, else 0.
func (s *Server) ShedRate() float64 {
	if c := s.ctrl.Load(); c != nil && c.Epochs() > 0 {
		return c.RejectionRate()
	}
	if g := s.gate.Load(); g != nil {
		return g.ShedRate()
	}
	return 0
}

// ---------------------------------------------------------------------------
// Epoch adaptation.

// AdaptationConfig configures StartAdaptation.
type AdaptationConfig struct {
	// Epoch is the adaptation period. Default 2s.
	Epoch time.Duration
	// HighThreshold / LowThreshold override the controller's rejection-
	// rate thresholds (defaults 0.10 / 0.01).
	HighThreshold float64
	LowThreshold  float64
}

// StartAdaptation wires the epoch controller to the server's free
// signals and starts it. The default rule set moves the engine's
// publish interval and ingest batch cap up (fewer, bigger batches and
// republishes under overload) and the sheddable admission watermark
// down (widening shedding); all within the bounds each tunable
// declared. Registers the amf_control_* metric families. Call once;
// Close stops the controller.
func (s *Server) StartAdaptation(cfg AdaptationConfig) {
	if s.ctrl.Load() != nil {
		return
	}
	ctl := s.eng.Control()
	var rules []control.Rule
	addRule := func(name string, widen float64) {
		if t, ok := ctl.Lookup(name); ok {
			rules = append(rules, control.Rule{Tunable: t, WidenFactor: widen, RelaxRate: 0.5})
		}
	}
	addRule("engine.publish_interval", 1.6)
	addRule("engine.ingest_batch_cap", 2.0)
	addRule("engine.admit_sheddable_watermark", 0.6)
	addRule("engine.replay_per_batch", 0.5) // replay is optional work: shed it first

	eng := s.eng
	gateReq := func() int64 {
		if g := s.gate.Load(); g != nil {
			return g.requests.Load()
		}
		return 0
	}
	gateShed := func() int64 {
		if g := s.gate.Load(); g != nil {
			return g.sheds.Load()
		}
		return 0
	}
	c := control.NewController(control.ControllerConfig{
		Epoch:         cfg.Epoch,
		HighThreshold: cfg.HighThreshold,
		LowThreshold:  cfg.LowThreshold,
		Signals: control.Signals{
			Arrived: func() int64 {
				st := eng.Stats()
				return gateReq() + st.Enqueued + st.ShedStandard + st.ShedSheddable + st.DroppedNew
			},
			Shed: func() int64 {
				st := eng.Stats()
				return gateShed() + st.ShedStandard + st.ShedSheddable + st.DroppedNew + st.DroppedOldest
			},
			QueueWaitP99: func() float64 { return eng.Metrics().QueueWait.Quantile(0.99) },
			InFlight:     func() float64 { return float64(s.inflight.Value()) },
			Staleness:    eng.Staleness,
		},
		Rules:  rules,
		Tracer: s.traces,
		Logger: s.log,
	})
	c.Register(s.reg)
	c.Start()
	s.ctrl.Store(c)
	s.log.Info("epoch adaptation started", "epoch", c.Epoch(), "rules", len(rules))
}

// Controller exposes the running epoch controller (nil before
// StartAdaptation), for amfbench and tests.
func (s *Server) Controller() *control.Controller { return s.ctrl.Load() }

// ---------------------------------------------------------------------------
// Config API: live inspection and override of registered tunables.

// TunableInfo is one tunable in GET /api/v1/config.
type TunableInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"` // int | duration | float
	Value    string `json:"value"`
	Baseline string `json:"baseline"` // relax target (flag value or package default)
	Min      string `json:"min"`
	Max      string `json:"max"`
	Source   string `json:"source"` // default | flag | adapted | override
	Help     string `json:"help"`
}

// ConfigResponse is the body of GET /api/v1/config.
type ConfigResponse struct {
	Tunables []TunableInfo `json:"tunables"`
}

// ConfigUpdateRequest is the body of PUT /api/v1/config: tunable name →
// new value (parsed per the tunable's kind; durations as "80ms").
// Overrides pin the tunable — the epoch controller skips it afterwards.
type ConfigUpdateRequest struct {
	Set map[string]string `json:"set"`
}

// ConfigUpdateResponse reports per-name outcomes of a PUT. Updates are
// applied independently in name order: entries in Applied took effect
// even when Errors is non-empty (the response status is 400 then).
type ConfigUpdateResponse struct {
	Applied map[string]string `json:"applied,omitempty"`
	Errors  map[string]string `json:"errors,omitempty"`
}

func (s *Server) configRoutes() {
	s.handle("GET /api/v1/config", s.handleGetConfig)
	s.handle("PUT /api/v1/config", s.handlePutConfig)
}

func (s *Server) handleGetConfig(w http.ResponseWriter, _ *http.Request) {
	list := s.eng.Control().List()
	resp := ConfigResponse{Tunables: make([]TunableInfo, 0, len(list))}
	for _, t := range list {
		resp.Tunables = append(resp.Tunables, TunableInfo{
			Name:     t.Name(),
			Kind:     t.Kind(),
			Value:    t.Value(),
			Baseline: t.Baseline(),
			Min:      t.MinString(),
			Max:      t.MaxString(),
			Source:   t.Source().String(),
			Help:     t.Help(),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePutConfig(w http.ResponseWriter, r *http.Request) {
	var req ConfigUpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Set) == 0 {
		s.countError(w, http.StatusBadRequest, "no tunables in request (expected {\"set\": {name: value}})")
		return
	}
	ctl := s.eng.Control()
	names := make([]string, 0, len(req.Set))
	for name := range req.Set {
		names = append(names, name)
	}
	sort.Strings(names)
	resp := ConfigUpdateResponse{}
	for _, name := range names {
		t, ok := ctl.Lookup(name)
		if !ok {
			if resp.Errors == nil {
				resp.Errors = map[string]string{}
			}
			resp.Errors[name] = "unknown tunable"
			continue
		}
		if err := t.SetString(req.Set[name], control.SourceOverride); err != nil {
			if resp.Errors == nil {
				resp.Errors = map[string]string{}
			}
			resp.Errors[name] = err.Error()
			continue
		}
		if resp.Applied == nil {
			resp.Applied = map[string]string{}
		}
		resp.Applied[name] = t.Value()
		s.log.Info("tunable overridden", "tunable", name, "value", t.Value())
	}
	status := http.StatusOK
	if len(resp.Errors) > 0 {
		status = http.StatusBadRequest
		s.metrics.badRequests.Add(1)
	}
	s.writeJSON(w, status, resp)
}
