package server

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/qosdb"
)

func storedServer(t *testing.T) (*Server, *qosdb.Store) {
	t.Helper()
	s := testServer(t)
	db, err := qosdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s.SetStore(db)
	return s, db
}

func TestHistoryWithoutStore(t *testing.T) {
	s := testServer(t)
	w := doReq(t, s, http.MethodGet, "/api/v1/history?user=u1", nil)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("no-store history status %d", w.Code)
	}
}

func TestObserveAppendsToStore(t *testing.T) {
	s, db := storedServer(t)
	observeSome(t, s)
	if db.Len() != 20 {
		t.Fatalf("store has %d observations, want 20", db.Len())
	}
}

func TestHistoryEndpoint(t *testing.T) {
	s, _ := storedServer(t)
	observeSome(t, s)

	w := doReq(t, s, http.MethodGet, "/api/v1/history?user=u1", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("history status %d: %s", w.Code, w.Body.String())
	}
	var entries []HistoryEntry
	if err := json.Unmarshal(w.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 { // u1 invoked s0..s4 once each
		t.Fatalf("user history = %d entries, want 5", len(entries))
	}
	for _, e := range entries {
		if e.User != "u1" || e.Service == "" {
			t.Fatalf("bad entry %+v", e)
		}
	}

	// Pair-restricted history.
	w = doReq(t, s, http.MethodGet, "/api/v1/history?user=u1&service=s2", nil)
	entries = nil
	if err := json.Unmarshal(w.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Service != "s2" {
		t.Fatalf("pair history = %+v", entries)
	}
}

func TestHistoryValidation(t *testing.T) {
	s, _ := storedServer(t)
	observeSome(t, s)
	cases := map[string]struct {
		path string
		code int
	}{
		"missing user":    {"/api/v1/history", http.StatusBadRequest},
		"unknown user":    {"/api/v1/history?user=ghost", http.StatusNotFound},
		"unknown service": {"/api/v1/history?user=u1&service=ghost", http.StatusNotFound},
		"bad sinceMs":     {"/api/v1/history?user=u1&sinceMs=abc", http.StatusBadRequest},
	}
	for name, c := range cases {
		if w := doReq(t, s, http.MethodGet, c.path, nil); w.Code != c.code {
			t.Errorf("%s: status %d, want %d", name, w.Code, c.code)
		}
	}
}

func TestHistorySinceFilterHTTP(t *testing.T) {
	s, _ := storedServer(t)
	observeSome(t, s)
	// All test observations land at offset ~0; a far-future since must
	// return an empty list.
	w := doReq(t, s, http.MethodGet, "/api/v1/history?user=u1&sinceMs=9999999", nil)
	var entries []HistoryEntry
	if err := json.Unmarshal(w.Body.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("future-since history = %+v", entries)
	}
}

// The full restart story: state snapshot restores factors and registries,
// the WAL replay rebuilds the replay pool.
func TestRestartWithStateAndWAL(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "qos.wal")
	db1, err := qosdb.Open(wal)
	if err != nil {
		t.Fatal(err)
	}
	s1 := testServer(t)
	s1.SetStore(db1)
	observeSome(t, s1)
	state, err := s1.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh server, restore state, reopen WAL, replay.
	db2, err := qosdb.Open(wal)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	s2 := New(core.MustNew(cfg))
	if err := s2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	s2.SetStore(db2)
	if n := s2.ReplayStore(-1); n != 20 {
		t.Fatalf("replayed %d observations, want 20", n)
	}
	// The restarted service can keep learning from its pool.
	if got := s2.eng.ReplaySteps(50); got != 50 {
		t.Fatalf("post-restart replay steps = %d", got)
	}
	if w := doReq(t, s2, http.MethodGet, "/api/v1/predict?user=u1&service=s1", nil); w.Code != http.StatusOK {
		t.Fatalf("post-restart predict: %d", w.Code)
	}
}

func TestReplayStoreWithoutStore(t *testing.T) {
	s := testServer(t)
	if n := s.ReplayStore(-1); n != 0 {
		t.Fatalf("replay without store = %d", n)
	}
	if s.Store() != nil {
		t.Fatal("store should be nil")
	}
}
