package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/engine"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/obs/trace"
	"github.com/qoslab/amf/internal/qosdb"
	"github.com/qoslab/amf/internal/registry"
	"github.com/qoslab/amf/internal/store"
	"github.com/qoslab/amf/internal/stream"
)

// Server is the QoS prediction service. Construct with New (or
// NewWithEngine to tune the serving engine), mount its Handler on an
// http.Server, and optionally run RunReplay in a goroutine for
// continuous background model updating between observations.
//
// All model access goes through an engine.Engine: prediction endpoints
// read a published immutable view without taking any lock, while
// observations and control operations are serialized by the engine's
// single writer. Call Close on shutdown to drain the ingest queue.
type Server struct {
	eng      *engine.Engine
	users    *registry.Registry
	services *registry.Registry
	base     time.Time
	now      func() time.Time
	mux      *http.ServeMux

	// MaxBatch bounds observe/predict batch sizes (guards memory against
	// hostile requests). Defaults to 10000.
	MaxBatch int

	// RankParallelThreshold is the candidate-set size at or above which
	// POST /api/v1/rank fans the scan across min(GOMAXPROCS, view shards)
	// workers instead of one serial pass. <= 0 disables the parallel
	// path. Defaults to 4096 — below that the fan-out overhead (goroutine
	// wakeups + k-way merge) exceeds the scan itself.
	RankParallelThreshold int

	// RankCoalesceWindow batches concurrent full-scan rank requests
	// arriving within this window into one multi-query arena pass (see
	// coalesce.go). 0 (the default) disables coalescing — a lone request
	// would only pay the window as added latency. Results are identical
	// to uncoalesced serving; only DRAM traffic and latency shape change.
	RankCoalesceWindow time.Duration

	// RankCoalesceMax caps a coalesced batch; reaching it flushes the
	// batch immediately without waiting out the window. Defaults to 16
	// when <= 0.
	RankCoalesceMax int

	// MetricsCompat additionally exposes the pre-rename metric names
	// (amf_uptime_ms) on /metrics for one release; see CHANGES.md.
	MetricsCompat bool

	// coalescer batches concurrent full-scan rankings when
	// RankCoalesceWindow > 0 (see coalesce.go). Always constructed;
	// consulted per request.
	coalescer *rankCoalescer

	// store is the optional QoS database (see SetStore).
	store *qosdb.Store

	// durable is the optional durable-state manager (see AttachDurable):
	// WAL journaling, background checkpoints, crash recovery.
	durable *store.Manager

	// Observability (see obs.go): the metric registry behind /metrics,
	// request middleware state, the live accuracy tracker, and the
	// structured logger. reqSeq numbers requests for log correlation.
	reg              *obs.Registry
	metrics          counters
	httpHist         *obs.HistogramVec
	rankLatency      *obs.HistogramVec
	rankCoalesceSize *obs.Histogram
	inflight         *obs.Gauge
	statusClass      [6]*obs.Counter // 0 unused; 1..5 = 1xx..5xx
	acc              *obs.AccuracyTracker
	traces           *trace.Recorder

	// SLO admission + control plane (see admission.go): gate is nil
	// until EnableAdmission, ctrl nil until StartAdaptation. The
	// admission metric families are always registered (zero while
	// disabled) so dashboards and the docs lint see a stable surface.
	gate       atomic.Pointer[admissionGate]
	ctrl       atomic.Pointer[control.Controller]
	admReq     [control.NumClasses]*obs.Counter
	admShed    [control.NumClasses]atomic.Int64
	admReasons map[string]*obs.Counter
	admWaitEst *obs.Histogram
	log              *slog.Logger
	logDebug         bool // cached log.Enabled(debug); refreshed by SetLogger
	slowThreshold    time.Duration
	instrument       bool
	reqSeq           atomic.Uint64
	closed           atomic.Bool

	// Cluster role (see replication.go): follower marks a replica that
	// tails a leader's WAL and rejects direct writes; repl is its tailer.
	// Both are set by StartFollower before serving traffic and flipped by
	// Promote on failover. replStreams tracks in-flight leader-side
	// replication streams so shutdown can drain them before the final
	// checkpoint.
	follower    atomic.Bool
	repl        *Replicator
	demotedTo   atomic.Value // string: leader URL learned at demotion
	promoteMu   sync.Mutex
	replStreams sync.WaitGroup
	replActive  atomic.Int64
	replErrors  atomic.Int64
}

// Option customizes a Server at construction time.
type Option func(*Server)

// WithLogger sets the structured logger used for request and lifecycle
// events (default slog.Default()).
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithSlowRequestThreshold sets the latency above which a request is
// logged as slow (default 1s; 0 keeps the default).
func WithSlowRequestThreshold(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.slowThreshold = d
		}
	}
}

// WithoutInstrumentation disables the HTTP middleware (latency
// histograms, in-flight gauge, status counters, accuracy tracking).
// It exists for the overhead benchmark that proves the middleware is
// within the <5% budget — production servers should not use it.
func WithoutInstrumentation() Option {
	return func(s *Server) { s.instrument = false }
}

// New creates a prediction service around an AMF model with default
// engine settings.
func New(model *core.Model, opts ...Option) *Server {
	return NewWithEngine(engine.New(model, engine.Config{}), opts...)
}

// NewWithEngine creates a prediction service on an explicitly
// configured serving engine (queue sizing, publish cadence). The server
// takes ownership: Close shuts the engine down.
func NewWithEngine(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{
		eng:                   eng,
		users:                 registry.New(),
		services:              registry.New(),
		now:                   time.Now,
		MaxBatch:              10000,
		RankParallelThreshold: 4096,
		log:                   slog.Default(),
		slowThreshold:         time.Second,
		instrument:            true,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.logDebug = s.log.Enabled(context.Background(), slog.LevelDebug)
	s.coalescer = newRankCoalescer(eng.View)
	// The trace recorder shares the slow-request threshold: a span worth a
	// slow-log warning is a span worth retaining past ring churn.
	s.traces = trace.NewRecorder(trace.Config{SlowThreshold: s.slowThreshold})
	s.base = s.now()
	s.mux = http.NewServeMux()
	s.buildMetrics()
	s.routes()
	return s
}

// NewWithClock injects a clock for tests.
func NewWithClock(model *core.Model, now func() time.Time) *Server {
	s := New(model)
	s.now = now
	s.base = now()
	return s
}

// SetLogger replaces the structured logger (nil is ignored). The
// debug-enabled check is cached here: per-request debug logging (and
// with it request-ID minting) is decided once per logger, not per
// request, so the untraced fast path stays free of slog calls.
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
		s.logDebug = l.Enabled(context.Background(), slog.LevelDebug)
	}
}

// Close drains the engine's ingest queue and stops its writer. The HTTP
// handlers keep working afterwards (the engine falls back to inline
// application), so shutdown sequencing with an http.Server is not
// order-sensitive — but /readyz starts failing so load balancers stop
// routing new traffic.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.log.Info("server closing", "component", "server")
	}
	if c := s.ctrl.Load(); c != nil {
		c.Stop()
	}
	if rp := s.repl; rp != nil {
		rp.Stop()
	}
	s.eng.Close()
}

// Engine exposes the serving engine (stats, manual flush) for embedders
// and tests.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the HTTP handler for the service.
func (s *Server) Handler() http.Handler { return s.mux }

// Traces exposes the span recorder behind GET /debug/traces for
// embedders and tests.
func (s *Server) Traces() *trace.Recorder { return s.traces }

func (s *Server) routes() {
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /readyz", s.handleReady)
	// The expensive API routes pass through the SLO admission gate
	// (inert until EnableAdmission — one atomic load while disabled).
	// Health, metrics, config, and cluster control stay ungated: an
	// overloaded server must remain observable and steerable.
	s.handle("POST /api/v1/observe", s.gated("POST /api/v1/observe", s.handleObserve))
	s.handle("GET /api/v1/predict", s.gated("GET /api/v1/predict", s.handlePredict))
	s.handle("POST /api/v1/predict", s.gated("POST /api/v1/predict", s.handleBatchPredict))
	s.rankRoutes()
	s.handle("GET /api/v1/stats", s.handleStats)
	s.configRoutes()
	s.handle("GET /api/v1/users", s.handleListUsers)
	s.handle("GET /api/v1/services", s.handleListServices)
	s.handle("DELETE /api/v1/users", s.handleDeleteUser)
	s.handle("DELETE /api/v1/services", s.handleDeleteService)
	s.stateRoutes()
	s.durableRoutes()
	s.replicationRoutes()
	s.historyRoutes()
	s.metricsRoutes()
	s.flaggedRoutes()
	// Outside the middleware, like pprof: a debug scrape should not
	// pollute the request histograms it exists to explain.
	s.mux.Handle("GET /debug/traces", s.traces)
}

// RunReplay keeps the model converging between observations: every
// interval it performs up to batch replay updates (Algorithm 1's
// "randomly pick an existing data sample" loop). It returns when ctx is
// cancelled.
func (s *Server) RunReplay(ctx context.Context, interval time.Duration, batch int) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.eng.AdvanceTo(s.now().Sub(s.base))
			s.eng.ReplaySteps(batch)
		}
	}
}

// writeJSON renders a JSON response and tallies its status class. The
// middleware deliberately does not wrap ResponseWriter (the wrapper and
// its pool were measurable on the predict fast path); counting happens
// here, where the status is known, and the few handlers that write
// non-JSON bodies call countStatus themselves.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.countStatus(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// countStatus tallies a response in the status-class counters.
func (s *Server) countStatus(status int) {
	if !s.instrument {
		return
	}
	if class := status / 100; class >= 1 && class <= 5 {
		s.statusClass[class].Inc()
	}
}

// countError tallies an error response in the metrics and writes it.
func (s *Server) countError(w http.ResponseWriter, status int, format string, args ...any) {
	switch {
	case status == http.StatusNotFound:
		s.metrics.notFound.Add(1)
	case status >= 400 && status < 500:
		s.metrics.badRequests.Add(1)
	}
	s.writeError(w, status, format, args...)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: it fails once Close has begun so a
// load balancer drains traffic, and succeeds while a published view is
// servable (which is always, after New).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.closed.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "closing"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{
		"status":       "ready",
		"view_version": fmt.Sprint(s.eng.View().Version()),
	})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	var req ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Observations) == 0 {
		s.countError(w, http.StatusBadRequest, "no observations")
		return
	}
	if len(req.Observations) > s.MaxBatch {
		s.countError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Observations), s.MaxBatch)
		return
	}
	var resp ObserveResponse
	samples := make([]stream.Sample, 0, len(req.Observations))
	for i, o := range req.Observations {
		if o.User == "" || o.Service == "" {
			s.countError(w, http.StatusBadRequest, "observation %d: user and service are required", i)
			return
		}
		if o.Value < 0 {
			s.countError(w, http.StatusBadRequest, "observation %d: negative QoS value %g", i, o.Value)
			return
		}
		uid, newU := s.users.Register(o.User)
		sid, newS := s.services.Register(o.Service)
		if newU {
			resp.NewUsers++
			// Journal the name⇄ID binding before the samples that use the
			// new ID; without it a recovered model would hold factors for
			// an ID no name resolves to.
			if s.durable != nil {
				s.journalRegistration(s.durable.WAL().AppendRegisterUser, uid, o.User)
			}
		}
		if newS {
			resp.NewServices++
			if s.durable != nil {
				s.journalRegistration(s.durable.WAL().AppendRegisterService, sid, o.Service)
			}
		}
		t := s.now().Sub(s.base)
		if o.TimestampMs > 0 {
			t = time.UnixMilli(o.TimestampMs).Sub(s.base)
			if t < 0 {
				t = 0
			}
		}
		samples = append(samples, stream.Sample{Time: t, User: uid, Service: sid, Value: o.Value})
	}
	if s.store != nil {
		// One WAL record (one CRC, one fsync under SyncAlways) for the
		// whole request instead of a record per sample.
		if err := s.store.AppendAll(samples); err != nil {
			s.countError(w, http.StatusInternalServerError, "qos database: %v", err)
			return
		}
	}
	// Live accuracy: score each incoming value against the model's prior
	// prediction before the sample trains it (see obs.AccuracyTracker).
	s.scoreSamples(samples)
	// Synchronous apply + republish: the HTTP observe API promises
	// read-your-writes (a client that uploads a measurement sees it
	// reflected in the next predict call). Traced requests additionally
	// get the engine's per-stage breakdown as span annotations.
	if sp := trace.FromContext(r.Context()); sp != nil {
		tm := s.eng.ObserveAllTraced(samples)
		sp.Annotate("engine_queue_wait", tm.QueueWait)
		sp.Annotate("engine_journal", tm.Journal)
		sp.Annotate("engine_apply", tm.Apply)
		sp.Annotate("engine_publish", tm.Publish)
		sp.Annotate("engine_commit_wait", tm.CommitWait)
	} else {
		s.eng.ObserveAll(samples)
	}
	resp.Accepted = len(samples)
	s.metrics.observations.Add(int64(resp.Accepted))
	s.writeJSON(w, http.StatusOK, resp)
}

// resolve maps names to model IDs, distinguishing which side is unknown.
func (s *Server) resolve(user, service string) (uid, sid int, err error) {
	uid, ok := s.users.Lookup(user)
	if !ok {
		return 0, 0, fmt.Errorf("unknown user %q", user)
	}
	sid, ok = s.services.Lookup(service)
	if !ok {
		return 0, 0, fmt.Errorf("unknown service %q", service)
	}
	return uid, sid, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	service := r.URL.Query().Get("service")
	if user == "" || service == "" {
		s.countError(w, http.StatusBadRequest, "user and service query parameters are required")
		return
	}
	uid, sid, err := s.resolve(user, service)
	if err != nil {
		s.countError(w, http.StatusNotFound, "%v", err)
		return
	}
	v, conf, err := s.eng.View().PredictWithConfidence(uid, sid)
	if err != nil {
		// Registered but never observed (e.g. deregistered from the
		// model after churn): treat as not found.
		s.countError(w, http.StatusNotFound, "no prediction for (%s, %s): %v", user, service, err)
		return
	}
	s.metrics.predictions.Add(1)
	s.writeJSON(w, http.StatusOK, PredictResponse{User: user, Service: service, Value: v, Confidence: conf})
}

func (s *Server) handleBatchPredict(w http.ResponseWriter, r *http.Request) {
	var req BatchPredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.User == "" || len(req.Services) == 0 {
		s.countError(w, http.StatusBadRequest, "user and services are required")
		return
	}
	if len(req.Services) > s.MaxBatch {
		s.countError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Services), s.MaxBatch)
		return
	}
	uid, userKnown := s.users.Lookup(req.User)
	resp := BatchPredictResponse{
		User:        req.User,
		Predictions: make([]BatchPrediction, 0, len(req.Services)),
	}
	view := s.eng.View() // one consistent snapshot for the whole batch
	// One registry pass for the whole candidate list (single RLock), then
	// lock-free view reads per resolved service.
	sids, known := s.services.ResolveAll(req.Services)
	for i, name := range req.Services {
		p := BatchPrediction{Service: name}
		if userKnown && known[i] {
			if v, conf, err := view.PredictWithConfidence(uid, sids[i]); err == nil {
				p.Value = v
				p.Confidence = conf
				p.OK = true
			}
		}
		resp.Predictions = append(resp.Predictions, p)
	}
	s.metrics.batchPredictions.Add(int64(len(resp.Predictions)))
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Users:    s.users.Len(),
		Services: s.services.Len(),
		Updates:  s.eng.Updates(),
		UptimeMs: s.now().Sub(s.base).Milliseconds(),
	})
}

func (s *Server) handleListUsers(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, infoList(s.users))
}

func (s *Server) handleListServices(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, infoList(s.services))
}

func infoList(r *registry.Registry) []EntityInfo {
	list := r.List()
	out := make([]EntityInfo, len(list))
	for i, info := range list {
		out[i] = EntityInfo{Name: info.Name, ID: info.ID}
	}
	return out
}

func (s *Server) handleDeleteUser(w http.ResponseWriter, r *http.Request) {
	s.handleDelete(w, r, s.users, s.eng.RemoveUser)
}

func (s *Server) handleDeleteService(w http.ResponseWriter, r *http.Request) {
	s.handleDelete(w, r, s.services, s.eng.RemoveService)
}

// handleDelete implements churn departure: the entity leaves the registry
// and its model state is purged.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, reg *registry.Registry, purge func(int)) {
	if s.rejectFollowerWrite(w) {
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		s.countError(w, http.StatusBadRequest, "name query parameter is required")
		return
	}
	id, ok := reg.Deregister(name)
	if !ok {
		s.countError(w, http.StatusNotFound, "unknown entity %q", name)
		return
	}
	purge(id)
	s.metrics.churnRemovals.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

// Snapshot exposes model snapshotting for operational persistence. It
// serializes the engine's published view, so it never stalls the writer
// or blocks observations (unlike core.Concurrent.Snapshot, which holds
// the model read lock for the full serialization).
func (s *Server) Snapshot() ([]byte, error) { return s.eng.Snapshot() }
