package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/qoslab/amf/internal/core"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	s1 := testServer(t)
	observeSome(t, s1)
	before := doReq(t, s1, http.MethodGet, "/api/v1/predict?user=u1&service=s2", nil)
	if before.Code != http.StatusOK {
		t.Fatalf("predict before save: %d", before.Code)
	}
	var orig PredictResponse
	if err := json.Unmarshal(before.Body.Bytes(), &orig); err != nil {
		t.Fatal(err)
	}

	data, err := s1.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh server restored from the state must give the same answers,
	// including the name-to-ID mapping.
	s2 := testServer(t)
	if err := s2.LoadState(data); err != nil {
		t.Fatal(err)
	}
	after := doReq(t, s2, http.MethodGet, "/api/v1/predict?user=u1&service=s2", nil)
	if after.Code != http.StatusOK {
		t.Fatalf("predict after restore: %d: %s", after.Code, after.Body.String())
	}
	var restored PredictResponse
	if err := json.Unmarshal(after.Body.Bytes(), &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Value != orig.Value {
		t.Fatalf("restored prediction %g != original %g", restored.Value, orig.Value)
	}

	// New registrations after restore must not collide with restored IDs.
	w := doReq(t, s2, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "brand-new", Service: "s0", Value: 1},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("observe after restore: %d", w.Code)
	}
	var stats StatsResponse
	w = doReq(t, s2, http.MethodGet, "/api/v1/stats", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Users != 5 { // 4 restored + 1 new
		t.Fatalf("users after restore+observe = %d, want 5", stats.Users)
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	s := testServer(t)
	if err := s.LoadState([]byte("junk")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSnapshotHTTPEndpoints(t *testing.T) {
	s1 := testServer(t)
	observeSome(t, s1)
	get := doReq(t, s1, http.MethodGet, "/api/v1/snapshot", nil)
	if get.Code != http.StatusOK {
		t.Fatalf("GET snapshot: %d", get.Code)
	}
	if ct := get.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}

	s2 := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/api/v1/snapshot", bytes.NewReader(get.Body.Bytes()))
	w := httptest.NewRecorder()
	s2.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST snapshot: %d: %s", w.Code, w.Body.String())
	}
	if got := doReq(t, s2, http.MethodGet, "/api/v1/predict?user=u1&service=s1", nil); got.Code != http.StatusOK {
		t.Fatalf("predict after HTTP restore: %d", got.Code)
	}
}

func TestSnapshotHTTPRejectsGarbage(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/api/v1/snapshot", bytes.NewReader([]byte("nope")))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("garbage restore: %d", w.Code)
	}
}

func TestEngineRestoreSwapsModel(t *testing.T) {
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	trained := core.MustNew(cfg)
	s := New(trained)
	observeSome(t, s)
	snap, err := s.eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.eng.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := s.eng.Restore([]byte("bad")); err == nil {
		t.Fatal("bad restore should fail and keep the old model")
	}
	if s.eng.NumUsers() != 4 {
		t.Fatalf("model lost state after failed restore: %d users", s.eng.NumUsers())
	}
}
