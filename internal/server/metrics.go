package server

import (
	"fmt"
	"net/http"
)

// metricsRoutes registers the /metrics endpoint; called from routes().
// The families themselves are built in buildMetrics (obs.go).
func (s *Server) metricsRoutes() {
	s.handle("GET /metrics", s.handleMetrics)
}

// handleMetrics renders the full metric catalog in the Prometheus text
// exposition format: every family carries # HELP and # TYPE headers,
// counters end in _total, durations are _seconds, and histograms expand
// into cumulative _bucket/_sum/_count series. The output is validated
// against the strict in-repo parser (obs.ParseMetrics) by the test suite.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
	if s.MetricsCompat {
		// One release of grace for dashboards still reading the old
		// names (renamed to amf_uptime_seconds; see CHANGES.md).
		fmt.Fprintf(w, "# HELP amf_uptime_ms DEPRECATED: use amf_uptime_seconds.\n")
		fmt.Fprintf(w, "# TYPE amf_uptime_ms gauge\n")
		fmt.Fprintf(w, "amf_uptime_ms %d\n", s.now().Sub(s.base).Milliseconds())
	}
}
