package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// counters holds the service's operational metrics. All fields are
// manipulated atomically; the zero value is ready to use.
type counters struct {
	observations     atomic.Int64 // accepted QoS observations
	predictions      atomic.Int64 // single predictions served
	batchPredictions atomic.Int64 // batch prediction entries served
	notFound         atomic.Int64 // 404 responses (unknown users/services)
	badRequests      atomic.Int64 // 400-level rejections
	churnRemovals    atomic.Int64 // users/services deregistered
}

// metricsRoutes registers the /metrics endpoint; called from routes().
func (s *Server) metricsRoutes() {
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// handleMetrics renders the counters plus model gauges in the plain-text
// exposition format scrapers expect: `name value` lines.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	write := func(name string, v int64) {
		fmt.Fprintf(w, "amf_%s %d\n", name, v)
	}
	write("observations_total", s.metrics.observations.Load())
	write("predictions_total", s.metrics.predictions.Load())
	write("batch_predictions_total", s.metrics.batchPredictions.Load())
	write("not_found_total", s.metrics.notFound.Load())
	write("bad_requests_total", s.metrics.badRequests.Load())
	write("churn_removals_total", s.metrics.churnRemovals.Load())
	write("model_users", int64(s.users.Len()))
	write("model_services", int64(s.services.Len()))
	write("model_updates_total", s.eng.Updates())
	write("uptime_ms", s.now().Sub(s.base).Milliseconds())
	// Serving-engine health: queue pressure, shed load, publish cadence.
	st := s.eng.Stats()
	write("engine_enqueued_total", st.Enqueued)
	write("engine_dropped_total", st.Dropped)
	write("engine_applied_total", st.Applied)
	write("engine_replayed_total", st.Replayed)
	write("engine_published_total", st.Published)
	write("engine_queue_len", int64(st.QueueLen))
	write("engine_queue_cap", int64(st.QueueCap))
	write("engine_view_version", int64(st.Version))
	if s.store != nil {
		write("qosdb_observations", int64(s.store.Len()))
	}
}
