package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"time"

	"github.com/qoslab/amf/internal/core"
)

// This file implements POST /api/v1/rank — the candidate-ranking query of
// the paper's runtime service adaptation loop (Sec. III), served entirely
// from one immutable core.PredictView via the bounded-heap arena fast
// path (internal/core/topk.go). Name resolution is batched (one registry
// RLock per request), and candidate sets at or above the server's
// RankParallelThreshold fan the scan across min(GOMAXPROCS, view shards)
// workers with a final k-way merge.

// rankRoutes registers the ranking endpoint; called from routes().
func (s *Server) rankRoutes() {
	s.handle("POST /api/v1/rank", s.gated("POST /api/v1/rank", s.handleRank))
}

// rankWorkers returns the fan-out width for a candidate set of size n:
// 1 (serial) below the threshold, min(GOMAXPROCS, 64 view shards) at or
// above it.
func (s *Server) rankWorkers(n int) int {
	if s.RankParallelThreshold <= 0 || n < s.RankParallelThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > 64 {
		w = 64
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req RankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if req.User == "" {
		s.countError(w, http.StatusBadRequest, "user is required")
		return
	}
	lowerIsBetter := true
	metric := req.Metric
	switch metric {
	case "", "rt", "responseTime":
		metric = "rt"
	case "tp", "throughput":
		metric = "tp"
		lowerIsBetter = false
	default:
		s.countError(w, http.StatusBadRequest, "unknown metric %q (want rt or tp)", req.Metric)
		return
	}
	if len(req.Services) > s.MaxBatch {
		s.countError(w, http.StatusRequestEntityTooLarge, "candidate set of %d exceeds limit %d", len(req.Services), s.MaxBatch)
		return
	}
	if len(req.Services) == 0 && req.TopK <= 0 {
		s.countError(w, http.StatusBadRequest, "topk is required when ranking all services")
		return
	}

	uid, ok := s.users.Lookup(req.User)
	if !ok {
		s.countError(w, http.StatusNotFound, "unknown user %q", req.User)
		return
	}

	start := time.Now()
	view := s.eng.View() // one consistent snapshot for the whole ranking
	resp := RankResponse{User: req.User, Metric: metric, ViewVersion: view.Version()}

	var mode string
	if len(req.Services) == 0 {
		if w := s.RankCoalesceWindow; w > 0 {
			// Coalesced full scan: park this request on the batch window
			// and serve it from one multi-query arena pass shared with
			// every concurrent full-scan request (see coalesce.go). The
			// batch is served from its own single view load, so the
			// response reports THAT view, not the one loaded above.
			mode = "full_scan_coalesced"
			max := s.RankCoalesceMax
			if max <= 0 {
				max = 16
			}
			res := s.coalescer.submit(uid, req.TopK, lowerIsBetter, w, max)
			view = res.view
			resp.ViewVersion = view.Version()
			resp.Candidates = view.NumServices()
			resp.Ranked = s.rankedNames(res.ranked)
			if s.instrument {
				s.metrics.rankCoalesced.Inc()
				s.rankCoalesceSize.Observe(float64(res.batch))
			}
		} else {
			// Rank everything the view knows: pure arena scan, no map walks.
			mode = "full_scan"
			workers := s.rankWorkers(view.NumServices())
			if workers > 1 {
				mode = "full_scan_parallel"
			}
			resp.Candidates = view.NumServices()
			ranked := view.TopKAll(uid, req.TopK, lowerIsBetter, workers)
			resp.Ranked = s.rankedNames(ranked)
		}
	} else {
		// Resolve every candidate name in one registry pass.
		ids, known := s.services.ResolveAll(req.Services)
		candidates := make([]int, 0, len(ids))
		candNames := make([]string, 0, len(ids))
		for i, id := range ids {
			if !known[i] {
				resp.Unknown = append(resp.Unknown, req.Services[i])
				continue
			}
			candidates = append(candidates, id)
			candNames = append(candNames, req.Services[i])
		}
		resp.Candidates = len(candidates)
		k := req.TopK
		if k <= 0 || k > len(candidates) {
			k = len(candidates)
		}
		workers := s.rankWorkers(len(candidates))
		var ranked []core.Ranked
		var unknownIDs []int
		if workers > 1 {
			mode = "parallel"
			ranked, unknownIDs = view.TopKParallel(uid, candidates, k, lowerIsBetter, workers)
		} else {
			mode = "serial"
			ranked, unknownIDs = view.TopK(uid, candidates, k, lowerIsBetter)
		}
		resp.Ranked = s.rankedNames(ranked)
		// Candidates registered but absent from the view (e.g. purged by
		// churn): map the returned IDs back to names. Both unknownIDs and
		// candidates preserve candidate order, so a two-pointer walk
		// recovers the names without building an id->name map.
		if len(unknownIDs) > 0 {
			ui := 0
			for i, id := range candidates {
				if ui < len(unknownIDs) && unknownIDs[ui] == id {
					resp.Unknown = append(resp.Unknown, candNames[i])
					ui++
				}
			}
		}
	}

	if s.instrument {
		s.rankLatency.With(mode).Observe(time.Since(start).Seconds())
		s.metrics.rankRequests.Inc()
		s.metrics.rankCandidates.Add(int64(resp.Candidates))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// rankedNames maps ranked model IDs back to registered service names.
// Entries whose registration vanished mid-flight (deregistered between
// the view load and now) keep a stable synthetic name.
func (s *Server) rankedNames(ranked []core.Ranked) []RankedService {
	out := make([]RankedService, len(ranked))
	for i, r := range ranked {
		name, ok := s.services.NameOf(r.Service)
		if !ok {
			name = "#departed"
		}
		out[i] = RankedService{Service: name, Value: r.Value}
	}
	return out
}
