package server

import (
	"net/http"
	"strconv"
	"time"

	"github.com/qoslab/amf/internal/qosdb"
	"github.com/qoslab/amf/internal/stream"
)

// HistoryEntry is one stored observation, rendered with names.
type HistoryEntry struct {
	User     string  `json:"user"`
	Service  string  `json:"service"`
	Value    float64 `json:"value"`
	OffsetMs int64   `json:"offsetMs"` // observation time, ms since service start
}

// SetStore attaches a QoS database (paper Fig. 3's "QoS Database"):
// every accepted observation is appended to it, and the history endpoint
// serves from it. Call before serving traffic. A nil store detaches.
func (s *Server) SetStore(db *qosdb.Store) { s.store = db }

// Store returns the attached QoS database, or nil.
func (s *Server) Store() *qosdb.Store { return s.store }

// ReplayStore feeds every stored observation at or after since back into
// the model — how a restarted service rebuilds its replay pool from the
// write-ahead log after LoadState restored the factors and registries.
// It returns the number of samples replayed.
func (s *Server) ReplayStore(since time.Duration) int {
	if s.store == nil {
		return 0
	}
	window := s.store.Window(since)
	s.eng.ObserveAll(window)
	return len(window)
}

func (s *Server) historyRoutes() {
	s.handle("GET /api/v1/history", s.handleHistory)
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.countError(w, http.StatusNotImplemented, "no QoS database attached")
		return
	}
	q := r.URL.Query()
	user := q.Get("user")
	if user == "" {
		s.countError(w, http.StatusBadRequest, "user query parameter is required")
		return
	}
	uid, ok := s.users.Lookup(user)
	if !ok {
		s.countError(w, http.StatusNotFound, "unknown user %q", user)
		return
	}
	since := time.Duration(-1)
	if raw := q.Get("sinceMs"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			s.countError(w, http.StatusBadRequest, "bad sinceMs %q", raw)
			return
		}
		since = time.Duration(ms) * time.Millisecond
	}

	var samples []stream.Sample
	if service := q.Get("service"); service != "" {
		sid, ok := s.services.Lookup(service)
		if !ok {
			s.countError(w, http.StatusNotFound, "unknown service %q", service)
			return
		}
		samples = s.store.History(uid, sid, since)
	} else {
		samples = s.store.UserHistory(uid, since)
	}

	out := make([]HistoryEntry, 0, len(samples))
	for _, sm := range samples {
		svcName := strconv.Itoa(sm.Service)
		if info, ok := s.services.Get(sm.Service); ok {
			svcName = info.Name
		}
		out = append(out, HistoryEntry{
			User:     user,
			Service:  svcName,
			Value:    sm.Value,
			OffsetMs: sm.Time.Milliseconds(),
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}
