package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/registry"
)

// persistedState is the on-disk image of a prediction service: the AMF
// model snapshot plus the user/service name⇄ID directories (the model
// alone is keyed by the IDs the registries assign, so both must travel
// together).
type persistedState struct {
	Model    []byte
	Users    []registry.Info
	Services []registry.Info
}

// SaveState serializes the full service state for persistence across
// restarts (model factors + registries; the replay pool is transient and
// deliberately excluded). The model bytes come from the engine's
// published view, so saving state never blocks the update path.
func (s *Server) SaveState() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.encodeState(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeState streams the persisted state to w without materializing the
// gob image in memory first (the model snapshot itself is one buffer; the
// gob framing and registry lists stream). It serializes whatever view is
// current; callers that pair the blob with a WAL sequence number must
// use encodeStateView with the view returned by engine.CheckpointView.
func (s *Server) encodeState(w io.Writer) error {
	return s.encodeStateView(w, s.eng.View())
}

// encodeStateView streams the persisted state serialized from a specific
// (immutable) published view. Passing the view explicitly is what lets a
// checkpoint capture the model state and its covered sequence number
// atomically: the view cannot gain post-capture samples, no matter how
// long serialization takes or what the writer drains meanwhile.
func (s *Server) encodeStateView(w io.Writer, v *core.PredictView) error {
	model, err := v.Snapshot()
	if err != nil {
		return err
	}
	st := persistedState{
		Model:    model,
		Users:    s.users.List(),
		Services: s.services.List(),
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("server: encode state: %w", err)
	}
	return nil
}

// LoadState replaces the service's model and registries with a state
// produced by SaveState. On error the service is left unchanged (the
// registries are restored only after the model decodes).
func (s *Server) LoadState(data []byte) error {
	var st persistedState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("server: decode state: %w", err)
	}
	users := registry.New()
	if err := users.Restore(st.Users); err != nil {
		return err
	}
	services := registry.New()
	if err := services.Restore(st.Services); err != nil {
		return err
	}
	if err := s.eng.Restore(st.Model); err != nil {
		return err
	}
	s.users = users
	s.services = services
	return nil
}

// stateRoutes registers the snapshot endpoints; called from routes().
func (s *Server) stateRoutes() {
	s.handle("GET /api/v1/snapshot", s.handleGetSnapshot)
	s.handle("POST /api/v1/snapshot", s.handlePostSnapshot)
}

// handleGetSnapshot streams the persisted state (operational backup)
// straight to the response — no full-image buffer per download. The ETag
// is the durable sequence number the snapshot covers (the WAL position
// when a store is attached, the view version otherwise), so a backup
// client can If-None-Match and skip the download when nothing changed.
func (s *Server) handleGetSnapshot(w http.ResponseWriter, r *http.Request) {
	var etag string
	var view *core.PredictView
	if s.durable != nil {
		// Seq and view come from one engine critical section
		// (CheckpointView), so the streamed blob covers exactly the
		// journaled records the tag names — a drain racing this handler
		// cannot leak post-seq samples into the download.
		seq, v := s.eng.CheckpointView()
		etag = fmt.Sprintf(`"seq-%d"`, seq)
		view = v
	} else {
		view = s.eng.View()
		etag = fmt.Sprintf(`"view-%d"`, view.Version())
	}
	if r.Header.Get("If-None-Match") == etag {
		s.countStatus(http.StatusNotModified)
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.countStatus(http.StatusOK)
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Disposition", `attachment; filename="amf-state.gob"`)
	h.Set("ETag", etag)
	if err := s.encodeStateView(w, view); err != nil {
		// Headers are gone; all we can do is cut the stream short (the
		// gob decoder on the other end will reject the truncation) and
		// log why.
		s.log.Warn("snapshot stream failed", "err", err)
	}
}

// handlePostSnapshot restores the service from an uploaded state.
func (s *Server) handlePostSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		s.countError(w, http.StatusBadRequest, "read snapshot: %v", err)
		return
	}
	if err := s.LoadState(data); err != nil {
		s.countError(w, http.StatusBadRequest, "restore: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}
