package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"

	"github.com/qoslab/amf/internal/registry"
)

// persistedState is the on-disk image of a prediction service: the AMF
// model snapshot plus the user/service name⇄ID directories (the model
// alone is keyed by the IDs the registries assign, so both must travel
// together).
type persistedState struct {
	Model    []byte
	Users    []registry.Info
	Services []registry.Info
}

// SaveState serializes the full service state for persistence across
// restarts (model factors + registries; the replay pool is transient and
// deliberately excluded). The model bytes come from the engine's
// published view, so saving state never blocks the update path.
func (s *Server) SaveState() ([]byte, error) {
	model, err := s.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	st := persistedState{
		Model:    model,
		Users:    s.users.List(),
		Services: s.services.List(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("server: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadState replaces the service's model and registries with a state
// produced by SaveState. On error the service is left unchanged (the
// registries are restored only after the model decodes).
func (s *Server) LoadState(data []byte) error {
	var st persistedState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("server: decode state: %w", err)
	}
	users := registry.New()
	if err := users.Restore(st.Users); err != nil {
		return err
	}
	services := registry.New()
	if err := services.Restore(st.Services); err != nil {
		return err
	}
	if err := s.eng.Restore(st.Model); err != nil {
		return err
	}
	s.users = users
	s.services = services
	return nil
}

// stateRoutes registers the snapshot endpoints; called from routes().
func (s *Server) stateRoutes() {
	s.handle("GET /api/v1/snapshot", s.handleGetSnapshot)
	s.handle("POST /api/v1/snapshot", s.handlePostSnapshot)
}

// handleGetSnapshot streams the persisted state (operational backup).
func (s *Server) handleGetSnapshot(w http.ResponseWriter, _ *http.Request) {
	data, err := s.SaveState()
	if err != nil {
		s.countError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	s.countStatus(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// handlePostSnapshot restores the service from an uploaded state.
func (s *Server) handlePostSnapshot(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		s.countError(w, http.StatusBadRequest, "read snapshot: %v", err)
		return
	}
	if err := s.LoadState(data); err != nil {
		s.countError(w, http.StatusBadRequest, "restore: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}
