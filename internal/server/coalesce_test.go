package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/engine"
	"github.com/qoslab/amf/internal/stream"
)

// Tests for request-coalesced full-scan ranking (coalesce.go). The
// contract under test: coalescing changes WHEN a request is served and
// what it costs, never WHAT it returns — every coalesced response is
// bit-identical to the serial TopKAll against the same view.

// coalesceEngine builds a trained engine with nUsers×nServices history.
func coalesceEngine(t testing.TB, nUsers, nServices int) *engine.Engine {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	m := core.MustNew(cfg)
	eng := engine.New(m, engine.Config{})
	t.Cleanup(eng.Close)
	var ss []stream.Sample
	for u := 0; u < nUsers; u++ {
		for s := 0; s < nServices; s++ {
			ss = append(ss, stream.Sample{User: u, Service: s, Value: 0.5 + float64((u*7+s*13)%11)})
		}
	}
	eng.ObserveAll(ss)
	return eng
}

// TestRankCoalescerBitIdentical is the -race acceptance test: N
// concurrent full-scan submissions against an engine that keeps
// republishing views must each come back bit-identical to the serial
// TopKAll on the SAME view their batch was served from. The result
// carries that view precisely so this comparison is exact even while
// the published view moves underneath the requests.
func TestRankCoalescerBitIdentical(t *testing.T) {
	eng := coalesceEngine(t, 8, 400)
	c := newRankCoalescer(eng.View)

	// Republisher: keep the engine's view version moving while the
	// concurrent submissions are in flight.
	stop := make(chan struct{})
	var repubWG sync.WaitGroup
	repubWG.Add(1)
	go func() {
		defer repubWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			eng.ObserveAll([]stream.Sample{{User: i % 8, Service: i % 400, Value: 1 + float64(i%5)}})
		}
	}()

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			uid := i % 8
			k := 1 + i%20
			lower := i%3 != 0
			res := c.submit(uid, k, lower, 500*time.Microsecond, 8)
			if res.view == nil {
				errs <- "result carries no view"
				return
			}
			if res.batch < 1 || res.batch > 8 {
				errs <- fmt.Sprintf("batch size %d outside [1,8]", res.batch)
				return
			}
			want := res.view.TopKAll(uid, k, lower, 1)
			if len(res.ranked) != len(want) {
				errs <- fmt.Sprintf("req %d: %d ranked, want %d", i, len(res.ranked), len(want))
				return
			}
			for j := range want {
				if res.ranked[j] != want[j] {
					errs <- fmt.Sprintf("req %d rank %d: got %+v want %+v", i, j, res.ranked[j], want[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	repubWG.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestRankEndpointCoalesced drives coalescing through the HTTP handler:
// concurrent POST /api/v1/rank full scans with the window enabled all
// succeed, return exactly the uncoalesced ranking (the model is static
// here, so every view is the same), and tick the coalescing metrics.
func TestRankEndpointCoalesced(t *testing.T) {
	s := testServer(t)
	observeSome(t, s) // u0..u3 × s0..s4
	s.RankCoalesceWindow = 2 * time.Millisecond
	s.RankCoalesceMax = 4

	uid, ok := s.users.Lookup("u1")
	if !ok {
		t.Fatal("u1 not registered")
	}
	want := s.eng.View().TopKAll(uid, 3, true, 1)
	if len(want) != 3 {
		t.Fatalf("reference ranking has %d entries", len(want))
	}

	const n = 12
	var wg sync.WaitGroup
	responses := make([]RankResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := doReq(t, s, http.MethodPost, "/api/v1/rank", RankRequest{User: "u1", TopK: 3})
			codes[i] = w.Code
			if w.Code == http.StatusOK {
				responses[i] = decodeRank(t, w.Body.Bytes())
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		resp := responses[i]
		if resp.Candidates != 5 || len(resp.Ranked) != 3 {
			t.Fatalf("request %d: candidates=%d ranked=%d", i, resp.Candidates, len(resp.Ranked))
		}
		for j, r := range resp.Ranked {
			name, _ := s.services.NameOf(want[j].Service)
			if r.Service != name || r.Value != want[j].Value {
				t.Fatalf("request %d rank %d: got %+v, want {%s %g}", i, j, r, name, want[j].Value)
			}
		}
	}
	if got := s.metrics.rankCoalesced.Value(); got != n {
		t.Fatalf("amf_rank_coalesced_total = %d, want %d", got, n)
	}
	if got := s.rankCoalesceSize.Count(); got != n {
		t.Fatalf("amf_rank_coalesce_batch_size observations = %d, want %d", got, n)
	}
}

// TestRankCoalesceDisabledByDefault: with the default window of 0 the
// full-scan path never touches the coalescer (no added latency, no
// coalesce metrics) — the 5%-budget guarantee for default configs.
func TestRankCoalesceDisabledByDefault(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	w := doReq(t, s, http.MethodPost, "/api/v1/rank", RankRequest{User: "u1", TopK: 3})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := s.metrics.rankCoalesced.Value(); got != 0 {
		t.Fatalf("amf_rank_coalesced_total = %d with coalescing disabled", got)
	}
	if got := s.rankCoalesceSize.Count(); got != 0 {
		t.Fatalf("amf_rank_coalesce_batch_size observations = %d with coalescing disabled", got)
	}
}

// TestRankCoalesceMaxOne: a degenerate max of 1 serves directly (no
// window wait) and still produces the exact serial result.
func TestRankCoalesceMaxOne(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	s.RankCoalesceWindow = time.Second // would be painful if actually waited
	s.RankCoalesceMax = 1

	uid, _ := s.users.Lookup("u2")
	want := s.eng.View().TopKAll(uid, 2, true, 1)
	start := time.Now()
	w := doReq(t, s, http.MethodPost, "/api/v1/rank", RankRequest{User: "u2", TopK: 2})
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("max=1 request waited %v; should serve directly", d)
	}
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeRank(t, w.Body.Bytes())
	if len(resp.Ranked) != len(want) {
		t.Fatalf("ranked %d, want %d", len(resp.Ranked), len(want))
	}
	for j, r := range resp.Ranked {
		name, _ := s.services.NameOf(want[j].Service)
		if r.Service != name || r.Value != want[j].Value {
			t.Fatalf("rank %d: got %+v, want {%s %g}", j, r, name, want[j].Value)
		}
	}
}
