package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	return New(core.MustNew(cfg))
}

func doReq(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(buf)
	} else {
		reader = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, reader)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func observeSome(t *testing.T, s *Server) {
	t.Helper()
	var obs []Observation
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			obs = append(obs, Observation{
				User:    fmt.Sprintf("u%d", i),
				Service: fmt.Sprintf("s%d", j),
				Value:   0.5 + float64((i+j)%4),
			})
		}
	}
	w := doReq(t, s, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: obs})
	if w.Code != http.StatusOK {
		t.Fatalf("observe status %d: %s", w.Code, w.Body.String())
	}
}

func TestHealthz(t *testing.T) {
	w := doReq(t, testServer(t), http.MethodGet, "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
}

func TestObserveRegistersAndCounts(t *testing.T) {
	s := testServer(t)
	w := doReq(t, s, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "u1", Service: "s1", Value: 1.4},
		{User: "u1", Service: "s2", Value: 0.7},
		{User: "u2", Service: "s1", Value: 0.4},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp ObserveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 || resp.NewUsers != 2 || resp.NewServices != 2 {
		t.Fatalf("observe response %+v", resp)
	}
}

func TestObserveValidation(t *testing.T) {
	s := testServer(t)
	cases := map[string]any{
		"bad json":    "{",
		"empty batch": ObserveRequest{},
		"no names":    ObserveRequest{Observations: []Observation{{Value: 1}}},
		"negative":    ObserveRequest{Observations: []Observation{{User: "u", Service: "s", Value: -1}}},
	}
	for name, body := range cases {
		var w *httptest.ResponseRecorder
		if raw, ok := body.(string); ok {
			req := httptest.NewRequest(http.MethodPost, "/api/v1/observe", strings.NewReader(raw))
			w = httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
		} else {
			w = doReq(t, s, http.MethodPost, "/api/v1/observe", body)
		}
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
	}
}

func TestObserveBatchLimit(t *testing.T) {
	s := testServer(t)
	s.MaxBatch = 2
	obs := []Observation{
		{User: "u", Service: "a", Value: 1},
		{User: "u", Service: "b", Value: 1},
		{User: "u", Service: "c", Value: 1},
	}
	w := doReq(t, s, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: obs})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
}

func TestPredictFlow(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	w := doReq(t, s, http.MethodGet, "/api/v1/predict?user=u1&service=s2", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", w.Code, w.Body.String())
	}
	var resp PredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Value < 0 || resp.Value > 20 {
		t.Fatalf("prediction %g out of range", resp.Value)
	}
}

func TestPredictErrors(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	if w := doReq(t, s, http.MethodGet, "/api/v1/predict", nil); w.Code != http.StatusBadRequest {
		t.Errorf("missing params: %d", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/api/v1/predict?user=ghost&service=s1", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown user: %d", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/api/v1/predict?user=u1&service=ghost", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown service: %d", w.Code)
	}
}

func TestBatchPredict(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	w := doReq(t, s, http.MethodPost, "/api/v1/predict", BatchPredictRequest{
		User:     "u2",
		Services: []string{"s0", "s4", "ghost"},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchPredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 3 {
		t.Fatalf("predictions = %+v", resp.Predictions)
	}
	if !resp.Predictions[0].OK || !resp.Predictions[1].OK {
		t.Fatal("known services should predict")
	}
	if resp.Predictions[2].OK {
		t.Fatal("unknown service must not predict")
	}
}

func TestBatchPredictUnknownUserAllNotOK(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	w := doReq(t, s, http.MethodPost, "/api/v1/predict", BatchPredictRequest{
		User:     "ghost",
		Services: []string{"s0"},
	})
	var resp BatchPredictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Predictions[0].OK {
		t.Fatal("unknown user must yield no predictions")
	}
}

func TestBatchPredictValidation(t *testing.T) {
	s := testServer(t)
	if w := doReq(t, s, http.MethodPost, "/api/v1/predict", BatchPredictRequest{}); w.Code != http.StatusBadRequest {
		t.Errorf("empty request: %d", w.Code)
	}
	s.MaxBatch = 1
	w := doReq(t, s, http.MethodPost, "/api/v1/predict", BatchPredictRequest{User: "u", Services: []string{"a", "b"}})
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d", w.Code)
	}
}

func TestStatsAndLists(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	w := doReq(t, s, http.MethodGet, "/api/v1/stats", nil)
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Users != 4 || stats.Services != 5 || stats.Updates != 20 {
		t.Fatalf("stats = %+v", stats)
	}
	var users []EntityInfo
	w = doReq(t, s, http.MethodGet, "/api/v1/users", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &users); err != nil {
		t.Fatal(err)
	}
	if len(users) != 4 {
		t.Fatalf("users = %+v", users)
	}
	var svcs []EntityInfo
	w = doReq(t, s, http.MethodGet, "/api/v1/services", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &svcs); err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 5 {
		t.Fatalf("services = %+v", svcs)
	}
}

func TestDeleteUserChurn(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	if w := doReq(t, s, http.MethodDelete, "/api/v1/users?name=u1", nil); w.Code != http.StatusOK {
		t.Fatalf("delete status %d", w.Code)
	}
	// Prediction for the departed user must now 404.
	if w := doReq(t, s, http.MethodGet, "/api/v1/predict?user=u1&service=s1", nil); w.Code != http.StatusNotFound {
		t.Fatalf("post-churn predict status %d", w.Code)
	}
	if w := doReq(t, s, http.MethodDelete, "/api/v1/users?name=u1", nil); w.Code != http.StatusNotFound {
		t.Fatalf("double delete status %d", w.Code)
	}
	if w := doReq(t, s, http.MethodDelete, "/api/v1/users", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("delete without name status %d", w.Code)
	}
	if w := doReq(t, s, http.MethodDelete, "/api/v1/services?name=s1", nil); w.Code != http.StatusOK {
		t.Fatalf("delete service status %d", w.Code)
	}
}

func TestObserveCustomTimestamp(t *testing.T) {
	base := time.Date(2014, 6, 1, 12, 0, 0, 0, time.UTC)
	s := NewWithClock(core.MustNew(core.DefaultConfig(-0.007, 0, 20)), func() time.Time { return base })
	w := doReq(t, s, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "u", Service: "s", Value: 1, TimestampMs: base.Add(time.Minute).UnixMilli()},
		{User: "u", Service: "s", Value: 1, TimestampMs: base.Add(-time.Hour).UnixMilli()}, // clamped to 0
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Restore(data); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplayStopsOnCancel(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.RunReplay(ctx, time.Millisecond, 50)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunReplay did not stop on cancel")
	}
	// Background replay should have performed extra updates beyond the 20
	// observations.
	w := doReq(t, s, http.MethodGet, "/api/v1/stats", nil)
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Updates <= 20 {
		t.Fatalf("replay performed no updates: %d", stats.Updates)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	doReq(t, s, http.MethodGet, "/api/v1/predict?user=u1&service=s1", nil)
	doReq(t, s, http.MethodGet, "/api/v1/predict?user=ghost&service=s1", nil)
	doReq(t, s, http.MethodDelete, "/api/v1/users?name=u3", nil)

	w := doReq(t, s, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"amf_observations_total 20",
		"amf_predictions_total 1",
		"amf_not_found_total 1",
		"amf_churn_removals_total 1",
		"amf_model_users 3",
		"amf_model_updates_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestMetricsCountsBadRequests(t *testing.T) {
	s := testServer(t)
	doReq(t, s, http.MethodPost, "/api/v1/observe", ObserveRequest{})
	w := doReq(t, s, http.MethodGet, "/metrics", nil)
	if !strings.Contains(w.Body.String(), "amf_bad_requests_total 1") {
		t.Fatalf("bad request not counted:\n%s", w.Body.String())
	}
}

func TestFlaggedEndpoint(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	// Train the existing entities so their trackers fall, then add a raw
	// newcomer whose tracker is still near 1.
	s.eng.ReplaySteps(2000)
	doReq(t, s, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: []Observation{
		{User: "fresh", Service: "s0", Value: 9},
	}})

	w := doReq(t, s, http.MethodGet, "/api/v1/flagged?threshold=0.6", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("flagged status %d: %s", w.Code, w.Body.String())
	}
	var resp FlaggedResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range resp.Users {
		if f.Name == "fresh" {
			found = true
			if f.Error < 0.6 {
				t.Fatalf("flagged error %g below threshold", f.Error)
			}
		}
	}
	if !found {
		t.Fatalf("newcomer not flagged: %+v", resp)
	}
	// Default threshold and validation.
	if w := doReq(t, s, http.MethodGet, "/api/v1/flagged", nil); w.Code != http.StatusOK {
		t.Fatalf("default threshold: %d", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/api/v1/flagged?threshold=abc", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("bad threshold: %d", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/api/v1/flagged?threshold=-1", nil); w.Code != http.StatusBadRequest {
		t.Fatalf("negative threshold: %d", w.Code)
	}
}
