package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/store"
)

// quietLogger discards all structured log output; recovery tests churn
// through warnings (torn tails, crash replays) on purpose.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// durableServer builds a Server attached to a fresh store.Manager on dir
// with the given fsync policy. The background checkpointer is effectively
// disabled (1h cadence) so tests control checkpoint timing explicitly.
func durableServer(t *testing.T, dir string, sync store.SyncPolicy) (*Server, *store.Manager, store.RecoveryStats) {
	t.Helper()
	mgr, err := store.Open(dir, store.Options{
		Sync:               sync,
		SyncInterval:       5 * time.Millisecond,
		CheckpointInterval: time.Hour,
		Logger:             quietLogger(),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := New(core.MustNew(cfg), WithLogger(quietLogger()))
	rs, err := svc.AttachDurable(mgr)
	if err != nil {
		t.Fatalf("AttachDurable: %v", err)
	}
	return svc, mgr, rs
}

// TestDurableCrashRecoveryProperty is the randomized crash-recovery
// property test: drive a durable server through a random mix of observe
// batches, entity deletions, and manual checkpoints; then "crash" (abandon
// the manager and server without any shutdown protocol), reopen the data
// directory with a fresh server, and assert that every acked observation
// is reflected — each surviving (user, service) pair predicts, each
// deleted entity stays deleted, and the recovered registries match the
// pre-crash directories exactly. Under -fsync=always every acked write is
// on stable storage, so nothing may be lost.
func TestDurableCrashRecoveryProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			svc, _, _ := durableServer(t, dir, store.SyncAlways)

			rng := rand.New(rand.NewSource(seed))
			type pair struct{ user, service string }
			acked := make(map[pair]bool) // pairs with at least one acked sample
			deletedUsers := make(map[string]bool)
			deletedServices := make(map[string]bool)
			name := func(prefix string, n int) string {
				return fmt.Sprintf("%s%d", prefix, rng.Intn(n))
			}

			const steps = 120
			for i := 0; i < steps; i++ {
				switch r := rng.Float64(); {
				case r < 0.75: // observe a small random batch
					var obs []Observation
					for j := 0; j < 1+rng.Intn(4); j++ {
						obs = append(obs, Observation{
							User:    name("u", 12),
							Service: name("s", 18),
							Value:   0.1 + 5*rng.Float64(),
						})
					}
					w := doReq(t, svc, http.MethodPost, "/api/v1/observe", ObserveRequest{Observations: obs})
					if w.Code != http.StatusOK {
						t.Fatalf("step %d: observe status %d: %s", i, w.Code, w.Body.String())
					}
					for _, o := range obs {
						acked[pair{o.User, o.Service}] = true
						delete(deletedUsers, o.User)
						delete(deletedServices, o.Service)
					}
				case r < 0.83: // delete a user (maybe unknown; both fine)
					u := name("u", 12)
					w := doReq(t, svc, http.MethodDelete, "/api/v1/users?name="+u, nil)
					if w.Code == http.StatusOK {
						deletedUsers[u] = true
					}
				case r < 0.91: // delete a service
					s := name("s", 18)
					w := doReq(t, svc, http.MethodDelete, "/api/v1/services?name="+s, nil)
					if w.Code == http.StatusOK {
						deletedServices[s] = true
					}
				default: // manual checkpoint mid-stream
					w := doReq(t, svc, http.MethodPost, "/api/v1/checkpoint", nil)
					if w.Code != http.StatusOK {
						t.Fatalf("step %d: checkpoint status %d: %s", i, w.Code, w.Body.String())
					}
				}
			}

			wantUsers := svc.users.List()
			wantServices := svc.services.List()

			// Crash: no engine close, no final checkpoint, no manager
			// close. SyncAlways means everything acked is already on disk.
			svc2, _, rs := durableServer(t, dir, store.SyncAlways)
			defer svc2.Close()

			gotUsers := svc2.users.List()
			gotServices := svc2.services.List()
			if len(gotUsers) != len(wantUsers) {
				t.Fatalf("recovered %d users, want %d", len(gotUsers), len(wantUsers))
			}
			for i := range wantUsers {
				if gotUsers[i].ID != wantUsers[i].ID || gotUsers[i].Name != wantUsers[i].Name {
					t.Fatalf("user %d: recovered %d/%q, want %d/%q",
						i, gotUsers[i].ID, gotUsers[i].Name, wantUsers[i].ID, wantUsers[i].Name)
				}
			}
			if len(gotServices) != len(wantServices) {
				t.Fatalf("recovered %d services, want %d", len(gotServices), len(wantServices))
			}
			for i := range wantServices {
				if gotServices[i].ID != wantServices[i].ID || gotServices[i].Name != wantServices[i].Name {
					t.Fatalf("service %d: recovered %d/%q, want %d/%q",
						i, gotServices[i].ID, gotServices[i].Name, wantServices[i].ID, wantServices[i].Name)
				}
			}

			for p := range acked {
				wantOK := !deletedUsers[p.user] && !deletedServices[p.service]
				w := doReq(t, svc2, http.MethodGet,
					"/api/v1/predict?user="+p.user+"&service="+p.service, nil)
				if wantOK && w.Code != http.StatusOK {
					t.Errorf("acked pair (%s,%s): predict status %d after recovery: %s",
						p.user, p.service, w.Code, w.Body.String())
				}
				if !wantOK && w.Code == http.StatusOK {
					t.Errorf("deleted pair (%s,%s): predict unexpectedly OK after recovery",
						p.user, p.service)
				}
			}
			if rs.Entries == 0 && !rs.HaveCheckpoint {
				t.Fatal("recovery found neither a checkpoint nor WAL entries")
			}
		})
	}
}

// TestDurableRecoveryBoundedLossInterval exercises the fsync=interval
// contract: after the flush window has elapsed, previously acked writes
// are durable; a crash loses at most the unflushed tail. The test forces
// a Sync (standing in for the background flush tick having fired) and
// asserts zero loss for everything acked before it.
func TestDurableRecoveryBoundedLossInterval(t *testing.T) {
	dir := t.TempDir()
	svc, mgr, _ := durableServer(t, dir, store.SyncInterval)

	observeSome(t, svc)
	if err := mgr.WAL().Sync(); err != nil { // the flush window closes
		t.Fatalf("sync: %v", err)
	}

	// Crash without shutdown; reopen and verify the synced prefix.
	svc2, _, rs := durableServer(t, dir, store.SyncInterval)
	defer svc2.Close()
	if rs.Samples < 20 {
		t.Fatalf("recovered %d samples, want >= 20 (all acked before the flush)", rs.Samples)
	}
	w := doReq(t, svc2, http.MethodGet, "/api/v1/predict?user=u1&service=s2", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("predict after interval recovery: status %d: %s", w.Code, w.Body.String())
	}
}

// TestDurableDoubleAttach pins the one-shot contract.
func TestDurableDoubleAttach(t *testing.T) {
	dir := t.TempDir()
	svc, mgr, _ := durableServer(t, dir, store.SyncOff)
	defer svc.Close()
	if _, err := svc.AttachDurable(mgr); err == nil {
		t.Fatal("second AttachDurable should fail")
	}
}

// TestCheckpointEndpointWithoutStore pins the 501 contract.
func TestCheckpointEndpointWithoutStore(t *testing.T) {
	svc := testServer(t)
	defer svc.Close()
	w := doReq(t, svc, http.MethodPost, "/api/v1/checkpoint", nil)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("checkpoint without store: status %d, want 501", w.Code)
	}
}

// TestDurableMetrics scrapes /metrics with a durable store attached —
// after a crash recovery, so the recovery counter is live — and
// validates the whole page plus the new amf_wal_* / amf_checkpoint_* /
// amf_recovery_* families through the strict in-repo parser.
func TestDurableMetrics(t *testing.T) {
	dir := t.TempDir()
	svc, _, _ := durableServer(t, dir, store.SyncAlways)
	observeSome(t, svc)
	// Crash (abandon) and recover so amf_recovery_replayed_total > 0.
	svc2, _, rs := durableServer(t, dir, store.SyncAlways)
	defer svc2.Close()
	if rs.Samples == 0 {
		t.Fatal("recovery replayed no samples")
	}
	observeSome(t, svc2) // journal fresh records on the recovered WAL
	w := doReq(t, svc2, http.MethodPost, "/api/v1/checkpoint", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", w.Code, w.Body.String())
	}

	w = doReq(t, svc2, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	tm, err := obs.ParseMetrics(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, w.Body.String())
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("/metrics does not validate: %v\n%s", err, w.Body.String())
	}
	value := func(fam string) float64 {
		t.Helper()
		f, ok := tm.Families[fam]
		if !ok {
			t.Fatalf("metrics missing family %s", fam)
		}
		if len(f.Samples) == 0 {
			t.Fatalf("family %s has no samples", fam)
		}
		return f.Samples[0].Value
	}
	for _, fam := range []string{
		"amf_wal_fsync_seconds",
		"amf_wal_appends_total",
		"amf_wal_bytes_total",
		"amf_wal_errors_total",
		"amf_wal_torn_truncations_total",
		"amf_wal_segments",
		"amf_wal_group_commit_syncs_total",
		"amf_wal_group_commit_records",
		"amf_checkpoint_seconds",
		"amf_checkpoints_total",
		"amf_checkpoint_age_seconds",
		"amf_recovery_replayed_total",
		"amf_journal_errors_total",
	} {
		value(fam) // existence + sample presence
	}
	if v := value("amf_recovery_replayed_total"); v < float64(rs.Samples) {
		t.Errorf("amf_recovery_replayed_total = %v, want >= %d", v, rs.Samples)
	}
	if v := value("amf_checkpoints_total"); v < 1 {
		t.Errorf("amf_checkpoints_total = %v, want >= 1", v)
	}
	if v := value("amf_wal_appends_total"); v < 1 {
		t.Errorf("amf_wal_appends_total = %v, want >= 1", v)
	}
}

// TestCrashChildHelper is not a test: it is the child half of the
// kill-restart integration test below. Re-invoked via os.Args[0] with
// AMF_CRASH_CHILD=1, it runs a real durable server on a real TCP socket
// until the parent SIGKILLs it.
func TestCrashChildHelper(t *testing.T) {
	if os.Getenv("AMF_CRASH_CHILD") != "1" {
		t.Skip("crash-test child helper; run via TestDurableKillRestart")
	}
	dir := os.Getenv("AMF_CRASH_DIR")
	sync := store.SyncAlways
	if p := os.Getenv("AMF_CRASH_FSYNC"); p != "" {
		var err error
		if sync, err = store.ParseSyncPolicy(p); err != nil {
			fmt.Printf("CHILD_ERR=%v\n", err)
			os.Exit(1)
		}
	}
	mgr, err := store.Open(dir, store.Options{
		Sync:               sync,
		CheckpointInterval: time.Hour,
		Logger:             quietLogger(),
	})
	if err != nil {
		fmt.Printf("CHILD_ERR=%v\n", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := New(core.MustNew(cfg), WithLogger(quietLogger()))
	if _, err := svc.AttachDurable(mgr); err != nil {
		fmt.Printf("CHILD_ERR=%v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("CHILD_ADDR=%s\n", ln.Addr().String())
	_ = http.Serve(ln, svc.Handler()) // runs until SIGKILL
}

// TestDurableKillRestart is the end-to-end crash test from the issue: a
// real child process serving HTTP on a durable data directory with
// fsync=always is killed with SIGKILL (no shutdown protocol of any kind),
// and the parent then recovers the directory in-process and verifies that
// every observation the child acked with a 200 is reflected in the
// recovered model. Zero acked loss is the always-policy contract.
func TestDurableKillRestart(t *testing.T) {
	runKillRestart(t, store.SyncAlways)
}

// TestDurableKillRestartGroupCommit is the same SIGKILL crash test under
// fsync=group: an observe acked mid-window is only acked AFTER its
// covering group fsync landed, so zero acked loss must hold exactly as
// under fsync=always — batching the fsync must never weaken the
// contract.
func TestDurableKillRestartGroupCommit(t *testing.T) {
	runKillRestart(t, store.SyncGroup)
}

func runKillRestart(t *testing.T, sync store.SyncPolicy) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "AMF_CRASH_CHILD=1", "AMF_CRASH_DIR="+dir,
		"AMF_CRASH_FSYNC="+sync.String())
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Wait for the child to report its listen address.
	var addr string
	scanner := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	addrCh := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			line := scanner.Text()
			if a, ok := strings.CutPrefix(line, "CHILD_ADDR="); ok {
				addrCh <- a
				return
			}
			if e, ok := strings.CutPrefix(line, "CHILD_ERR="); ok {
				addrCh <- "ERR:" + e
				return
			}
		}
		addrCh <- "ERR:child exited without address"
	}()
	select {
	case a := <-addrCh:
		if strings.HasPrefix(a, "ERR:") {
			t.Fatalf("child failed: %s", a)
		}
		addr = a
	case <-deadline:
		t.Fatal("timed out waiting for child address")
	}

	// Drive acked observations over real HTTP. Every 200 is a durability
	// promise under fsync=always.
	client := &http.Client{Timeout: 5 * time.Second}
	type pair struct{ user, service string }
	var acked []pair
	for i := 0; i < 25; i++ {
		u := fmt.Sprintf("ku%d", i%5)
		s := fmt.Sprintf("ks%d", i%7)
		body := fmt.Sprintf(`{"observations":[{"user":%q,"service":%q,"value":%g}]}`,
			u, s, 0.5+float64(i%4))
		resp, err := client.Post("http://"+addr+"/api/v1/observe", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			acked = append(acked, pair{u, s})
		}
	}
	if len(acked) == 0 {
		t.Fatal("no observations were acked")
	}

	// SIGKILL: the child gets no chance to flush, checkpoint, or close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child: %v", err)
	}
	_, _ = cmd.Process.Wait()

	// Recover the directory in-process and verify zero acked loss.
	svc, _, rs := durableServer(t, dir, sync)
	defer svc.Close()
	if rs.Samples < len(acked) {
		t.Errorf("recovered %d samples, want >= %d acked", rs.Samples, len(acked))
	}
	for _, p := range acked {
		w := doReq(t, svc, http.MethodGet,
			"/api/v1/predict?user="+p.user+"&service="+p.service, nil)
		if w.Code != http.StatusOK {
			t.Errorf("acked pair (%s,%s) lost after SIGKILL: predict status %d: %s",
				p.user, p.service, w.Code, w.Body.String())
		}
	}
}
