// Package server implements the paper's "QoS prediction service"
// (framework Fig. 3) as an HTTP/JSON service on the standard library:
// input handling (collecting observed QoS data from users), online
// updating (folding the stream into the AMF model and running replay in
// the background), QoS prediction on demand, and the user/service
// managers handling join and leave.
package server

// Observation is one reported QoS measurement: user invoked service and
// measured Value (e.g. response time in seconds). TimestampMs is the
// observation time in Unix milliseconds; zero means "now".
type Observation struct {
	User        string  `json:"user"`
	Service     string  `json:"service"`
	Value       float64 `json:"value"`
	TimestampMs int64   `json:"timestampMs,omitempty"`
}

// ObserveRequest is the body of POST /api/v1/observe.
type ObserveRequest struct {
	Observations []Observation `json:"observations"`
}

// ObserveResponse reports what the input-handling stage did.
type ObserveResponse struct {
	Accepted    int `json:"accepted"`
	NewUsers    int `json:"newUsers"`
	NewServices int `json:"newServices"`
}

// PredictResponse is the body of GET /api/v1/predict.
type PredictResponse struct {
	User    string  `json:"user"`
	Service string  `json:"service"`
	Value   float64 `json:"value"`
	// Confidence in (0, 1] derived from the model's per-entity error
	// trackers; near 1 for converged pairs, low for fresh entities.
	Confidence float64 `json:"confidence"`
}

// BatchPredictRequest is the body of POST /api/v1/predict: one user, many
// candidate services (the candidate-ranking call an adaptation action
// makes).
type BatchPredictRequest struct {
	User     string   `json:"user"`
	Services []string `json:"services"`
}

// BatchPrediction is one element of a batch response. OK is false when no
// estimate exists (unknown service, or the user is unknown).
type BatchPrediction struct {
	Service    string  `json:"service"`
	Value      float64 `json:"value,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	OK         bool    `json:"ok"`
}

// BatchPredictResponse is the response of POST /api/v1/predict.
type BatchPredictResponse struct {
	User        string            `json:"user"`
	Predictions []BatchPrediction `json:"predictions"`
}

// RankRequest is the body of POST /api/v1/rank: the paper's
// candidate-selection query served by the ranking fast path. Services
// lists the candidates; an empty/omitted list ranks every known service
// (TopK then becomes mandatory). TopK <= 0 returns the full ranking of
// the candidate list. Metric selects the ordering: "rt" (response time,
// lower is better — the default) or "tp" (throughput, higher is better).
type RankRequest struct {
	User     string   `json:"user"`
	Services []string `json:"services,omitempty"`
	TopK     int      `json:"topk,omitempty"`
	Metric   string   `json:"metric,omitempty"`
}

// RankedService is one entry of a ranking response, best first.
type RankedService struct {
	Service string  `json:"service"`
	Value   float64 `json:"value"`
}

// RankResponse is the body of POST /api/v1/rank. The whole ranking is
// computed against one immutable published view (ViewVersion), so it is
// internally consistent: no concurrent model update can reorder it.
type RankResponse struct {
	User        string          `json:"user"`
	Metric      string          `json:"metric"`
	Ranked      []RankedService `json:"ranked"`
	Unknown     []string        `json:"unknown,omitempty"`
	Candidates  int             `json:"candidates"`
	ViewVersion uint64          `json:"viewVersion"`
}

// StatsResponse is the body of GET /api/v1/stats.
type StatsResponse struct {
	Users    int   `json:"users"`
	Services int   `json:"services"`
	Updates  int64 `json:"updates"`
	UptimeMs int64 `json:"uptimeMs"`
}

// EntityInfo describes one registered user or service.
type EntityInfo struct {
	Name string `json:"name"`
	ID   int    `json:"id"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
