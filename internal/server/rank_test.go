package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/qoslab/amf/internal/obs"
)

func decodeRank(t *testing.T, body []byte) RankResponse {
	t.Helper()
	var resp RankResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("rank response does not decode: %v\n%s", err, body)
	}
	return resp
}

func TestRankEndpoint(t *testing.T) {
	s := testServer(t)
	observeSome(t, s) // u0..u3 × s0..s4

	w := doReq(t, s, http.MethodPost, "/api/v1/rank", RankRequest{
		User:     "u1",
		Services: []string{"s3", "s0", "s4", "ghost", "s1"},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("rank status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeRank(t, w.Body.Bytes())
	if resp.User != "u1" || resp.Metric != "rt" {
		t.Fatalf("echo fields: %+v", resp)
	}
	if resp.Candidates != 4 {
		t.Fatalf("candidates = %d, want 4", resp.Candidates)
	}
	if len(resp.Ranked) != 4 {
		t.Fatalf("ranked %d services: %+v", len(resp.Ranked), resp.Ranked)
	}
	for i := 1; i < len(resp.Ranked); i++ {
		if resp.Ranked[i].Value < resp.Ranked[i-1].Value {
			t.Fatalf("rt ranking not ascending: %+v", resp.Ranked)
		}
	}
	if len(resp.Unknown) != 1 || resp.Unknown[0] != "ghost" {
		t.Fatalf("unknown = %v, want [ghost]", resp.Unknown)
	}
	if resp.ViewVersion == 0 {
		t.Fatal("view version missing")
	}

	// The ranking must agree with batch predict on the same services.
	bp := doReq(t, s, http.MethodPost, "/api/v1/predict", BatchPredictRequest{
		User: "u1", Services: []string{"s3", "s0", "s4", "s1"},
	})
	var bpResp BatchPredictResponse
	if err := json.Unmarshal(bp.Body.Bytes(), &bpResp); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, p := range bpResp.Predictions {
		if p.OK {
			vals[p.Service] = p.Value
		}
	}
	for _, r := range resp.Ranked {
		if v, ok := vals[r.Service]; !ok || v != r.Value {
			t.Fatalf("rank value %q=%g disagrees with predict %g (%v)", r.Service, r.Value, v, ok)
		}
	}
}

func TestRankTopKAndMetricDirection(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	all := []string{"s0", "s1", "s2", "s3", "s4"}

	full := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u0", Services: all}).Body.Bytes())
	top2 := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u0", Services: all, TopK: 2}).Body.Bytes())
	if len(top2.Ranked) != 2 {
		t.Fatalf("topk=2 returned %d", len(top2.Ranked))
	}
	for i := range top2.Ranked {
		if top2.Ranked[i] != full.Ranked[i] {
			t.Fatalf("topk not a prefix of full ranking: %+v vs %+v", top2.Ranked, full.Ranked)
		}
	}

	tp := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u0", Services: all, Metric: "throughput"}).Body.Bytes())
	if tp.Metric != "tp" {
		t.Fatalf("metric echo %q", tp.Metric)
	}
	for i := 1; i < len(tp.Ranked); i++ {
		if tp.Ranked[i].Value > tp.Ranked[i-1].Value {
			t.Fatalf("tp ranking not descending: %+v", tp.Ranked)
		}
	}
}

func TestRankFullScan(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	// Empty candidate list = rank every known service; TopK mandatory.
	resp := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u2", TopK: 3}).Body.Bytes())
	if resp.Candidates != 5 || len(resp.Ranked) != 3 {
		t.Fatalf("full scan: %d candidates, %d ranked", resp.Candidates, len(resp.Ranked))
	}
	// And it agrees with the explicit-candidate ranking.
	explicit := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u2", Services: []string{"s0", "s1", "s2", "s3", "s4"}, TopK: 3}).Body.Bytes())
	for i := range resp.Ranked {
		if resp.Ranked[i] != explicit.Ranked[i] {
			t.Fatalf("full scan disagrees with explicit candidates:\n%+v\n%+v", resp.Ranked, explicit.Ranked)
		}
	}
}

func TestRankErrors(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	cases := []struct {
		name string
		body any
		raw  string
		code int
	}{
		{name: "bad json", raw: "{", code: http.StatusBadRequest},
		{name: "missing user", body: RankRequest{Services: []string{"s0"}}, code: http.StatusBadRequest},
		{name: "unknown metric", body: RankRequest{User: "u0", Services: []string{"s0"}, Metric: "jitter"}, code: http.StatusBadRequest},
		{name: "full scan without topk", body: RankRequest{User: "u0"}, code: http.StatusBadRequest},
		{name: "unknown user", body: RankRequest{User: "ghost", Services: []string{"s0"}}, code: http.StatusNotFound},
	}
	for _, tc := range cases {
		if tc.raw != "" {
			req := httptest.NewRequest(http.MethodPost, "/api/v1/rank", strings.NewReader(tc.raw))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.code {
				t.Errorf("%s: status %d, want %d", tc.name, rec.Code, tc.code)
			}
			continue
		}
		if got := doReq(t, s, http.MethodPost, "/api/v1/rank", tc.body).Code; got != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.code)
		}
	}
	// Oversized candidate set.
	s.MaxBatch = 3
	if got := doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u0", Services: []string{"s0", "s1", "s2", "s3"}}).Code; got != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized: status %d, want 413", got)
	}
}

// TestRankParallelThresholdPath forces the parallel fan-out by dropping
// the threshold to 1 and checks it returns the same ranking as serial.
func TestRankParallelThresholdPath(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	all := []string{"s0", "s1", "s2", "s3", "s4"}
	serial := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u1", Services: all}).Body.Bytes())
	s.RankParallelThreshold = 1
	parallel := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u1", Services: all}).Body.Bytes())
	if len(serial.Ranked) != len(parallel.Ranked) {
		t.Fatalf("parallel ranked %d, serial %d", len(parallel.Ranked), len(serial.Ranked))
	}
	for i := range serial.Ranked {
		if serial.Ranked[i] != parallel.Ranked[i] {
			t.Fatalf("parallel path disagrees at %d:\n%+v\n%+v", i, serial.Ranked, parallel.Ranked)
		}
	}
	// Full scan through the parallel path too.
	fsSerial := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u1", TopK: 4}).Body.Bytes())
	s.RankParallelThreshold = 0 // disabled again
	fsPar := decodeRank(t, doReq(t, s, http.MethodPost, "/api/v1/rank",
		RankRequest{User: "u1", TopK: 4}).Body.Bytes())
	for i := range fsSerial.Ranked {
		if fsSerial.Ranked[i] != fsPar.Ranked[i] {
			t.Fatalf("full-scan parallel disagrees:\n%+v\n%+v", fsSerial.Ranked, fsPar.Ranked)
		}
	}
}

// TestRankMetricsExposition checks the amf_rank_* families land on
// /metrics, survive the strict parser+validator round-trip, and count the
// requests this test just made.
func TestRankMetricsExposition(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	for i := 0; i < 3; i++ {
		doReq(t, s, http.MethodPost, "/api/v1/rank",
			RankRequest{User: "u0", Services: []string{"s0", "s1", "s2"}})
	}
	doReq(t, s, http.MethodPost, "/api/v1/rank", RankRequest{User: "u0", TopK: 2})

	w := doReq(t, s, http.MethodGet, "/metrics", nil)
	tm, err := obs.ParseMetrics(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("/metrics does not validate: %v", err)
	}
	if v, ok := tm.Value("amf_rank_requests_total", nil); !ok || v != 4 {
		t.Fatalf("amf_rank_requests_total = %g, %v; want 4", v, ok)
	}
	// 3 requests × 3 candidates + 1 full scan × 5 services.
	if v, ok := tm.Value("amf_rank_candidates_total", nil); !ok || v != 14 {
		t.Fatalf("amf_rank_candidates_total = %g, %v; want 14", v, ok)
	}
	f, ok := tm.Families["amf_rank_latency_seconds"]
	if !ok {
		t.Fatal("amf_rank_latency_seconds family missing")
	}
	modes := map[string]float64{}
	for _, smp := range f.Samples {
		if strings.HasSuffix(smp.Name, "_count") {
			modes[smp.Labels["mode"]] = smp.Value
		}
	}
	if modes["serial"] != 3 {
		t.Fatalf("serial latency count = %g, want 3 (modes %v)", modes["serial"], modes)
	}
	if modes["full_scan"] != 1 {
		t.Fatalf("full_scan latency count = %g, want 1 (modes %v)", modes["full_scan"], modes)
	}
}
