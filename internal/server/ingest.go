package server

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// Ingest implements ingest.Sink: the TCP stream-input path feeds
// observations through the same registration, storage, and model-update
// pipeline as the HTTP observe endpoint.
func (s *Server) Ingest(user, service string, value float64, timestampMs int64) error {
	if user == "" || service == "" {
		return fmt.Errorf("server: user and service are required")
	}
	if value < 0 {
		return fmt.Errorf("server: negative QoS value %g", value)
	}
	uid, _ := s.users.Register(user)
	sid, _ := s.services.Register(service)
	t := s.now().Sub(s.base)
	if timestampMs > 0 {
		t = time.UnixMilli(timestampMs).Sub(s.base)
		if t < 0 {
			t = 0
		}
	}
	sample := stream.Sample{Time: t, User: uid, Service: sid, Value: value}
	if s.store != nil {
		if err := s.store.Append(sample); err != nil {
			return err
		}
	}
	s.model.Observe(sample)
	s.metrics.observations.Add(1)
	return nil
}
