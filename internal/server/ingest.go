package server

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/stream"
)

// Ingest implements ingest.Sink: the TCP stream-input path feeds
// observations through the same registration and storage pipeline as
// the HTTP observe endpoint, but hands the model update to the engine's
// ingest queue fire-and-forget — the high-rate stream never waits on
// model math, and visibility is bounded by the engine's publish cadence
// rather than immediate. If the queue rejects the sample (engine
// closed), it is applied inline so no accepted observation is lost.
func (s *Server) Ingest(user, service string, value float64, timestampMs int64) error {
	if s.follower.Load() {
		return fmt.Errorf("server: follower: writes must go to the leader")
	}
	if user == "" || service == "" {
		return fmt.Errorf("server: user and service are required")
	}
	if value < 0 {
		return fmt.Errorf("server: negative QoS value %g", value)
	}
	uid, newU := s.users.Register(user)
	sid, newS := s.services.Register(service)
	// Journal new name⇄ID bindings before the sample can reach the
	// engine's journal (Enqueue happens below, so the drain that journals
	// this sample is strictly later): replay then rebuilds the directory
	// entry before re-training the factors keyed by it.
	if s.durable != nil {
		if newU {
			s.journalRegistration(s.durable.WAL().AppendRegisterUser, uid, user)
		}
		if newS {
			s.journalRegistration(s.durable.WAL().AppendRegisterService, sid, service)
		}
	}
	t := s.now().Sub(s.base)
	if timestampMs > 0 {
		t = time.UnixMilli(timestampMs).Sub(s.base)
		if t < 0 {
			t = 0
		}
	}
	sample := stream.Sample{Time: t, User: uid, Service: sid, Value: value}
	if s.store != nil {
		if err := s.store.Append(sample); err != nil {
			return err
		}
	}
	// Live accuracy: one lock-free view read scores the sample against
	// the model's prior prediction before it trains on it.
	s.scoreSample(sample)
	// TCP ingest is the fire-and-forget firehose: it enters the engine
	// queue as sheddable-class work, so under overload the watermark
	// refuses it (counted in amf_admission_shed_total{class="sheddable"})
	// instead of churning the queue. A refusal is not an error — the
	// stream protocol has no per-sample ack and the model prefers fresh
	// data anyway. Only a closed engine falls back to inline apply, so
	// accepted pre-shutdown observations are never lost.
	if !s.eng.EnqueueClass(sample, control.Sheddable) && s.eng.Closed() {
		s.eng.Observe(sample)
	}
	s.metrics.observations.Add(1)
	return nil
}
