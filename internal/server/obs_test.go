package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/obs"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	return cfg
}

func mustModel(cfg core.Config) *core.Model { return core.MustNew(cfg) }

func newReqWithHeader(method, path, key, val string) (*http.Request, *httptest.ResponseRecorder) {
	req := httptest.NewRequest(method, path, nil)
	req.Header.Set(key, val)
	return req, httptest.NewRecorder()
}

// TestMetricsPrometheusGrammar validates the entire /metrics page against
// the strict text-format parser: every family HELP/TYPE'd, every counter
// _total, histogram buckets cumulative with le="+Inf", _count == +Inf.
func TestMetricsPrometheusGrammar(t *testing.T) {
	s := testServer(t)
	observeSome(t, s)
	doReq(t, s, http.MethodGet, "/api/v1/predict?user=u1&service=s1", nil)
	doReq(t, s, http.MethodGet, "/api/v1/predict?user=ghost&service=s1", nil)
	doReq(t, s, http.MethodPost, "/api/v1/predict", BatchPredictRequest{User: "u1", Services: []string{"s0", "s1"}})
	doReq(t, s, http.MethodDelete, "/api/v1/users?name=u3", nil)
	doReq(t, s, http.MethodGet, "/api/v1/flagged?threshold=0.5", nil)
	doReq(t, s, http.MethodGet, "/metrics", nil) // self-scrape counts too

	w := doReq(t, s, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	tm, err := obs.ParseMetrics(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, w.Body.String())
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("/metrics does not validate: %v\n%s", err, w.Body.String())
	}

	// The catalog the acceptance criteria call out.
	for _, fam := range []string{
		"amf_http_request_duration_seconds", // per-route latency histograms
		"amf_http_requests_in_flight",
		"amf_http_responses_total",
		"amf_engine_view_staleness_seconds", // engine staleness
		"amf_engine_queue_wait_seconds",
		"amf_engine_apply_seconds",
		"amf_engine_publish_seconds",
		"amf_accuracy_mre",  // live EMA/median accuracy
		"amf_accuracy_npre", // live tail accuracy
		"amf_accuracy_ema_relative_error",
		"amf_uptime_seconds",
	} {
		if _, ok := tm.Families[fam]; !ok {
			t.Errorf("metrics missing family %s", fam)
		}
	}

	// Per-route series exist for the routes we exercised.
	f := tm.Families["amf_http_request_duration_seconds"]
	routes := map[string]bool{}
	for _, smp := range f.Samples {
		routes[smp.Labels["route"]] = true
	}
	for _, want := range []string{"GET /api/v1/predict", "POST /api/v1/observe", "GET /metrics"} {
		if !routes[want] {
			t.Errorf("no latency series for route %q (have %v)", want, routes)
		}
	}

	// Status classes counted.
	if v, ok := tm.Value("amf_http_responses_total", map[string]string{"code": "2xx"}); !ok || v < 5 {
		t.Errorf("2xx responses = %g, %v", v, ok)
	}
	if v, ok := tm.Value("amf_http_responses_total", map[string]string{"code": "4xx"}); !ok || v < 1 {
		t.Errorf("4xx responses = %g, %v", v, ok)
	}

	// The only request in flight during the scrape is the scrape itself,
	// and the gauge returns to zero once it completes.
	if v, _ := tm.Value("amf_http_requests_in_flight", nil); v != 1 {
		t.Errorf("in-flight during scrape = %g, want 1 (the scrape)", v)
	}
	if v := s.inflight.Value(); v != 0 {
		t.Errorf("in-flight at rest = %d, want 0", v)
	}

	// Old-name counters kept their values and _total suffix.
	if v, _ := tm.Value("amf_observations_total", nil); v != 20 {
		t.Errorf("amf_observations_total = %g, want 20", v)
	}
	// The ms-suffixed uptime gauge is gone by default.
	if strings.Contains(w.Body.String(), "amf_uptime_ms") {
		t.Error("amf_uptime_ms still exposed without MetricsCompat")
	}
}

func TestMetricsCompatFlag(t *testing.T) {
	s := testServer(t)
	s.MetricsCompat = true
	w := doReq(t, s, http.MethodGet, "/metrics", nil)
	body := w.Body.String()
	if !strings.Contains(body, "amf_uptime_ms") {
		t.Fatalf("compat mode missing amf_uptime_ms:\n%s", body)
	}
	// Compat lines are still grammatical (HELP/TYPE'd).
	tm, err := obs.ParseMetrics(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveAccuracyTracksObservations(t *testing.T) {
	s := testServer(t)
	observeSome(t, s) // first sightings: all unscored
	if s.Accuracy().Samples() != 0 {
		t.Fatalf("first sightings were scored: %d", s.Accuracy().Samples())
	}
	if s.Accuracy().Misses() != 20 {
		t.Fatalf("misses = %d, want 20", s.Accuracy().Misses())
	}
	observeSome(t, s) // repeats: every pair now has a prior prediction
	if s.Accuracy().Samples() != 20 {
		t.Fatalf("samples = %d, want 20", s.Accuracy().Samples())
	}
	if mre := s.Accuracy().MRE(); mre <= 0 {
		t.Fatalf("live MRE = %g after scored samples", mre)
	}
	// The TCP-ingest path scores too.
	if err := s.Ingest("u0", "s0", 1.0, 0); err != nil {
		t.Fatal(err)
	}
	if s.Accuracy().Samples() != 21 {
		t.Fatalf("ingest sample not scored: %d", s.Accuracy().Samples())
	}
}

func TestReadyz(t *testing.T) {
	s := testServer(t)
	w := doReq(t, s, http.MethodGet, "/readyz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("readyz = %d before close", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ready" {
		t.Fatalf("status %q", body["status"])
	}
	s.Close()
	if w := doReq(t, s, http.MethodGet, "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d after close, want 503", w.Code)
	}
	// healthz (liveness) keeps succeeding: the process is healthy even
	// while draining.
	if w := doReq(t, s, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d after close", w.Code)
	}
}

func TestRequestIDHeader(t *testing.T) {
	// Client-supplied IDs are always echoed (either header spelling).
	s := testServer(t)
	req, w := newReqWithHeader(http.MethodGet, "/healthz", "X-Request-ID", "trace-123")
	s.Handler().ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-ID"); got != "trace-123" {
		t.Fatalf("request id %q, want trace-123", got)
	}
	// Untraced requests pay nothing: no generated ID unless request
	// logging will consume it.
	if w := doReq(t, s, http.MethodGet, "/healthz", nil); w.Header().Get("X-Request-ID") != "" {
		t.Fatalf("unexpected generated id %q without request logging", w.Header().Get("X-Request-ID"))
	}
	// With debug-level request logging, IDs are minted and returned.
	lg := slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s2 := New(mustModel(testConfig()), WithLogger(lg))
	if w := doReq(t, s2, http.MethodGet, "/healthz", nil); w.Header().Get("X-Request-ID") == "" {
		t.Fatal("no X-Request-ID assigned with request logging enabled")
	}
}

func TestSlowRequestLogged(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, nil))
	cfg := testConfig()
	s := New(mustModel(cfg), WithLogger(lg), WithSlowRequestThreshold(time.Nanosecond))
	doReq(t, s, http.MethodGet, "/healthz", nil)
	if !strings.Contains(buf.String(), "slow request") {
		t.Fatalf("no slow-request warning: %s", buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["route"] != "GET /healthz" || rec["request_id"] == "" {
		t.Fatalf("slow log missing fields: %v", rec)
	}
}

func TestPprofEndpoints(t *testing.T) {
	s := testServer(t)
	if w := doReq(t, s, http.MethodGet, "/debug/pprof/", nil); w.Code != http.StatusNotFound {
		t.Fatalf("pprof mounted without EnablePprof: %d", w.Code)
	}
	s.EnablePprof()
	if w := doReq(t, s, http.MethodGet, "/debug/pprof/", nil); w.Code != http.StatusOK {
		t.Fatalf("pprof index = %d", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/debug/pprof/cmdline", nil); w.Code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", w.Code)
	}
}

func TestWithoutInstrumentation(t *testing.T) {
	cfg := testConfig()
	s := New(mustModel(cfg), WithoutInstrumentation())
	observeSome(t, s)
	w := doReq(t, s, http.MethodGet, "/metrics", nil)
	tm, err := obs.ParseMetrics(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Service counters still work; middleware series stay empty.
	if v, _ := tm.Value("amf_observations_total", nil); v != 20 {
		t.Fatalf("observations = %g", v)
	}
	if v, _ := tm.Value("amf_http_request_duration_seconds_count", map[string]string{"route": "POST /api/v1/observe"}); v != 0 {
		t.Fatalf("uninstrumented server recorded latency: %g", v)
	}
	if s.Accuracy().Samples() != 0 || s.Accuracy().Misses() != 0 {
		t.Fatal("uninstrumented server scored accuracy")
	}
}
