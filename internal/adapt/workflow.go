// Package adapt simulates the execution middleware of the paper's
// QoS-driven service adaptation framework (Sec. III, Fig. 1 and Fig. 3):
// service-based applications expressed as workflows of abstract tasks,
// each implemented by one of several functionally-equivalent candidate
// services; a QoS manager that observes invocations and reports them to a
// prediction model; and adaptation policies that replace a degraded
// working service with the candidate the predictor ranks best.
package adapt

import (
	"errors"
	"fmt"
)

// Task is one abstract task of a workflow (A, B, C in the paper's Fig. 1)
// together with the IDs of its functionally-equivalent candidate services
// (A1, A2, ...).
type Task struct {
	Name       string
	Candidates []int
	// SLA is the response-time budget of the task in seconds; an
	// invocation above it is an SLA violation (and a trigger for
	// adaptation). Zero or negative disables the per-task SLA.
	SLA float64
	// MinTP is the throughput floor of the task in kbps; an invocation
	// below it is an SLA violation when the environment reports
	// throughput (see ThroughputEnvironment). Zero or negative disables
	// the floor.
	MinTP float64
}

// Workflow is a sequential composition of abstract tasks; its end-to-end
// latency is the sum of its task latencies.
type Workflow struct {
	Name  string
	Tasks []Task
}

// Validate reports the first structural problem of the workflow, or nil.
func (w Workflow) Validate() error {
	if len(w.Tasks) == 0 {
		return errors.New("adapt: workflow has no tasks")
	}
	seen := make(map[string]bool, len(w.Tasks))
	for i, t := range w.Tasks {
		if t.Name == "" {
			return fmt.Errorf("adapt: task %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("adapt: duplicate task name %q", t.Name)
		}
		seen[t.Name] = true
		if len(t.Candidates) == 0 {
			return fmt.Errorf("adapt: task %q has no candidate services", t.Name)
		}
		cand := make(map[int]bool, len(t.Candidates))
		for _, c := range t.Candidates {
			if c < 0 {
				return fmt.Errorf("adapt: task %q has negative candidate %d", t.Name, c)
			}
			if cand[c] {
				return fmt.Errorf("adapt: task %q lists candidate %d twice", t.Name, c)
			}
			cand[c] = true
		}
	}
	return nil
}

// Bindings is the current working-service assignment: Bindings[i] is the
// service bound to task i.
type Bindings []int

// InitialBindings binds every task to its first candidate.
func (w Workflow) InitialBindings() Bindings {
	b := make(Bindings, len(w.Tasks))
	for i, t := range w.Tasks {
		b[i] = t.Candidates[0]
	}
	return b
}

// validFor reports whether every binding is one of its task's candidates.
func (b Bindings) validFor(w Workflow) bool {
	if len(b) != len(w.Tasks) {
		return false
	}
	for i, t := range w.Tasks {
		ok := false
		for _, c := range t.Candidates {
			if b[i] == c {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
