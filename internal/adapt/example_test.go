package adapt_test

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/adapt"
	"github.com/qoslab/amf/internal/stream"
)

// fixedEnv is a scripted environment for the example.
type fixedEnv map[int]float64

func (e fixedEnv) InvokeRT(_, service, _ int) float64 { return e[service] }

// fixedPred predicts the same values the environment serves.
type fixedPred map[int]float64

func (p fixedPred) PredictRT(_, service int) (float64, bool) {
	v, ok := p[service]
	return v, ok
}

// One adaptation action end to end: the working service violates its SLA,
// the QoS manager reports the observation, and the policy rebinds the
// task to the candidate the predictor ranks best — the Fig. 1 scenario.
func ExampleMiddleware() {
	wf := adapt.Workflow{
		Name: "order-pipeline",
		Tasks: []adapt.Task{
			{Name: "inventory", Candidates: []int{0, 1, 2}, SLA: 1.0},
		},
	}
	env := fixedEnv{0: 4.0, 1: 0.3, 2: 0.8} // service 0 is degraded
	pred := fixedPred{0: 4.0, 1: 0.3, 2: 0.8}

	var observed []stream.Sample
	mw, err := adapt.NewMiddleware(wf, 7, adapt.NewPredictedSelector(pred),
		func(s stream.Sample) { observed = append(observed, s) })
	if err != nil {
		fmt.Println(err)
		return
	}

	res := mw.Tick(env, 0, time.Second)
	fmt.Printf("violations=%d adaptations=%d\n", res.Violations, res.Adaptations)
	fmt.Printf("rebound to service %d\n", mw.Bindings()[0])
	fmt.Printf("observations reported: %d\n", len(observed))
	// Output:
	// violations=1 adaptations=1
	// rebound to service 1
	// observations reported: 1
}
