package adapt

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/dataset"
)

func simDataset() dataset.Config {
	return dataset.Config{Users: 20, Services: 60, Slices: 6, Interval: 15 * time.Minute, Rank: 5, Seed: 99}
}

func TestRunSimulationStrategyOrdering(t *testing.T) {
	res, err := RunSimulation(SimulationOptions{
		Dataset:           simDataset(),
		Users:             20,
		Tasks:             3,
		CandidatesPerTask: 8,
		SLA:               2,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 4 {
		t.Fatalf("strategies = %d", len(res.Strategies))
	}
	byName := map[string]StrategyResult{}
	for _, s := range res.Strategies {
		byName[s.Name] = s
		if s.Invocations == 0 {
			t.Fatalf("%s made no invocations", s.Name)
		}
	}
	static := byName["static"]
	predicted := byName["predicted"]
	oracle := byName["oracle"]

	// The paper's motivation: QoS-prediction-driven adaptation beats no
	// adaptation, and approaches the oracle.
	if predicted.ViolationRate >= static.ViolationRate {
		t.Errorf("predicted violation rate %.3f should beat static %.3f",
			predicted.ViolationRate, static.ViolationRate)
	}
	if oracle.ViolationRate > predicted.ViolationRate+0.02 {
		t.Errorf("oracle %.3f should be at least as good as predicted %.3f",
			oracle.ViolationRate, predicted.ViolationRate)
	}
	if static.Adaptations != 0 {
		t.Errorf("static adapted %d times", static.Adaptations)
	}
	if predicted.Adaptations == 0 {
		t.Error("predicted strategy never adapted")
	}
	if predicted.MeanLatency >= static.MeanLatency {
		t.Errorf("predicted mean latency %.3f should beat static %.3f",
			predicted.MeanLatency, static.MeanLatency)
	}
}

func TestRunSimulationValidation(t *testing.T) {
	bad := simDataset()
	bad.Users = 0
	if _, err := RunSimulation(SimulationOptions{Dataset: bad}); err == nil {
		t.Error("invalid dataset should error")
	}
	// Workflow needing more candidates than services exist.
	if _, err := RunSimulation(SimulationOptions{
		Dataset:           simDataset(),
		Tasks:             10,
		CandidatesPerTask: 10,
	}); err == nil {
		t.Error("oversized workflow should error")
	}
}

func TestRunSimulationDeterministic(t *testing.T) {
	opts := SimulationOptions{Dataset: simDataset(), Slices: 2, Seed: 5}
	a, err := RunSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Strategies {
		if a.Strategies[i] != b.Strategies[i] {
			t.Fatalf("non-deterministic simulation: %+v vs %+v", a.Strategies[i], b.Strategies[i])
		}
	}
}

func TestRunSimulationPoissonWorkload(t *testing.T) {
	res, err := RunSimulation(SimulationOptions{
		Dataset:                 simDataset(),
		Slices:                  3,
		MeanInvocationsPerSlice: 2.5,
		Seed:                    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All strategies must face the identical workload.
	base := res.Strategies[0].Invocations
	if base == 0 {
		t.Fatal("no invocations under Poisson workload")
	}
	for _, s := range res.Strategies[1:] {
		if s.Invocations != base {
			t.Fatalf("unequal workloads across strategies: %d vs %d", s.Invocations, base)
		}
	}
	// Expected volume ≈ users * slices * mean * tasks.
	expect := float64(20*3) * 2.5 * 3
	if float64(base) < expect*0.6 || float64(base) > expect*1.4 {
		t.Fatalf("invocations = %d, want ≈ %.0f", base, expect)
	}
}
