package adapt

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
	"github.com/qoslab/amf/internal/workload"
)

// SimulationOptions configures the end-to-end adaptation experiment: many
// users run the same abstract workflow against the synthetic cloud, each
// adaptation strategy in its own pass over identical QoS conditions (the
// generator is deterministic, so every strategy faces the same world).
type SimulationOptions struct {
	Dataset dataset.Config
	// Users participating (must be <= Dataset.Users). Zero means all.
	Users int
	// Tasks and CandidatesPerTask shape the workflow. Zero means 3 tasks
	// with 8 candidates each.
	Tasks             int
	CandidatesPerTask int
	// SLA is the per-task response-time budget in seconds. Zero means 2.
	SLA float64
	// Slices to simulate (must be <= Dataset.Slices). Zero means all.
	Slices int
	// ReplayPerTick is how many AMF replay updates run after each user
	// tick in the predicted strategy. Zero means 20.
	ReplayPerTick int
	// MeanInvocationsPerSlice, when positive, draws each user's workflow
	// executions per slice from a Poisson arrival process with this mean
	// (see internal/workload) instead of exactly one execution. All
	// strategies see identical arrival counts.
	MeanInvocationsPerSlice float64
	Seed                    int64
}

func (o SimulationOptions) withDefaults() SimulationOptions {
	if o.Users <= 0 || o.Users > o.Dataset.Users {
		o.Users = o.Dataset.Users
	}
	if o.Tasks == 0 {
		o.Tasks = 3
	}
	if o.CandidatesPerTask == 0 {
		o.CandidatesPerTask = 8
	}
	if o.SLA == 0 {
		o.SLA = 2
	}
	if o.Slices <= 0 || o.Slices > o.Dataset.Slices {
		o.Slices = o.Dataset.Slices
	}
	if o.ReplayPerTick == 0 {
		o.ReplayPerTick = 20
	}
	return o
}

// StrategyResult aggregates one strategy's pass.
type StrategyResult struct {
	Name          string
	MeanLatency   float64 // mean end-to-end workflow latency, seconds
	ViolationRate float64 // SLA violations per task invocation
	Adaptations   int     // total binding replacements
	Invocations   int
}

// SimulationResult holds all strategies' results, in run order.
type SimulationResult struct {
	Workflow   Workflow
	Strategies []StrategyResult
}

// generatorEnv adapts the dataset generator to the Environment and
// ThroughputEnvironment interfaces.
type generatorEnv struct{ g *dataset.Generator }

func (e generatorEnv) InvokeRT(user, service, slice int) float64 {
	return e.g.Value(dataset.ResponseTime, user, service, slice)
}

func (e generatorEnv) InvokeTP(user, service, slice int) float64 {
	return e.g.Value(dataset.Throughput, user, service, slice)
}

// RunSimulation executes the adaptation experiment with four strategies:
// static (never adapt), random (adapt blindly), predicted (adapt to AMF's
// best candidate — the paper's proposal), and oracle (adapt to the true
// best candidate — the upper bound).
func RunSimulation(opts SimulationOptions) (*SimulationResult, error) {
	opts = opts.withDefaults()
	gen, err := dataset.New(opts.Dataset)
	if err != nil {
		return nil, err
	}
	wf, err := buildWorkflow(opts, gen.Config())
	if err != nil {
		return nil, err
	}
	res := &SimulationResult{Workflow: wf}

	// Pre-draw per-(slice, user) execution counts so every strategy runs
	// against the exact same workload.
	ticks := make([][]int, opts.Slices)
	tickRng := rand.New(rand.NewSource(opts.Seed + 23))
	for s := range ticks {
		ticks[s] = make([]int, opts.Users)
		for u := range ticks[s] {
			if opts.MeanInvocationsPerSlice > 0 {
				ticks[s][u] = workload.PoissonCount(tickRng, opts.MeanInvocationsPerSlice)
			} else {
				ticks[s][u] = 1
			}
		}
	}

	type pass struct {
		name     string
		selector func(model *core.Model) Selector
		useModel bool
	}
	passes := []pass{
		{name: "static", selector: func(*core.Model) Selector { return StaticSelector{} }},
		{name: "random", selector: func(*core.Model) Selector { return NewRandomSelector(opts.Seed + 11) }},
		{name: "predicted", useModel: true, selector: func(m *core.Model) Selector {
			return NewPredictedSelector(modelPredictor{m})
		}},
		{name: "oracle", selector: func(*core.Model) Selector {
			return NewOracleSelector(func(u, s int) float64 {
				return gen.PairMean(dataset.ResponseTime, u, s)
			})
		}},
	}

	for _, p := range passes {
		sr, err := runPass(opts, gen, wf, ticks, p.name, p.selector, p.useModel)
		if err != nil {
			return nil, err
		}
		res.Strategies = append(res.Strategies, sr)
	}
	return res, nil
}

// modelPredictor adapts core.Model to QoSPredictor.
type modelPredictor struct{ m *core.Model }

func (p modelPredictor) PredictRT(user, service int) (float64, bool) {
	v, err := p.m.Predict(user, service)
	return v, err == nil
}

func buildWorkflow(opts SimulationOptions, cfg dataset.Config) (Workflow, error) {
	need := opts.Tasks * opts.CandidatesPerTask
	if need > cfg.Services {
		return Workflow{}, fmt.Errorf("adapt: workflow needs %d candidate services, dataset has %d", need, cfg.Services)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(cfg.Services)
	wf := Workflow{Name: "simulated-app"}
	for t := 0; t < opts.Tasks; t++ {
		task := Task{Name: fmt.Sprintf("task-%d", t), SLA: opts.SLA}
		task.Candidates = append(task.Candidates, perm[t*opts.CandidatesPerTask:(t+1)*opts.CandidatesPerTask]...)
		wf.Tasks = append(wf.Tasks, task)
	}
	return wf, wf.Validate()
}

func runPass(opts SimulationOptions, gen *dataset.Generator, wf Workflow, ticks [][]int, name string,
	mkSelector func(*core.Model) Selector, useModel bool) (StrategyResult, error) {

	env := generatorEnv{gen}
	var model *core.Model
	var observer Observer
	if useModel {
		rmin, rmax := dataset.ResponseTime.Range()
		cfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
		cfg.Seed = opts.Seed
		cfg.Expiry = 4 * opts.Dataset.Interval
		m, err := core.New(cfg)
		if err != nil {
			return StrategyResult{}, err
		}
		model = m
		observer = func(s stream.Sample) { m.Observe(s) }
	}
	selector := mkSelector(model)

	// Every strategy starts from the same randomized initial bindings:
	// users are spread across candidates, which is also what seeds the
	// collaborative model with coverage of the candidate space.
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	mws := make([]*Middleware, opts.Users)
	for u := range mws {
		mw, err := NewMiddleware(wf, u, selector, observer)
		if err != nil {
			return StrategyResult{}, err
		}
		b := mw.Bindings()
		for i, task := range wf.Tasks {
			b[i] = task.Candidates[rng.Intn(len(task.Candidates))]
		}
		if err := mw.Rebind(b); err != nil {
			return StrategyResult{}, err
		}
		mws[u] = mw
	}

	sr := StrategyResult{Name: name}
	var totalLatency float64
	var tickSeq, violations int
	for slice := 0; slice < opts.Slices; slice++ {
		now := gen.SliceTime(slice)
		if model != nil {
			model.AdvanceTo(now)
		}
		for u, mw := range mws {
			for rep := 0; rep < ticks[slice][u]; rep++ {
				tr := mw.Tick(env, slice, now+time.Duration(tickSeq)) // unique, increasing stamps
				totalLatency += tr.Latency
				violations += tr.Violations
				sr.Invocations += len(wf.Tasks)
				tickSeq++
				if model != nil {
					for k := 0; k < opts.ReplayPerTick; k++ {
						if !model.ReplayStep() {
							break
						}
					}
				}
			}
		}
	}
	for _, mw := range mws {
		sr.Adaptations += mw.Adaptations()
	}
	if tickSeq > 0 {
		sr.MeanLatency = totalLatency / float64(tickSeq)
	}
	if sr.Invocations > 0 {
		sr.ViolationRate = float64(violations) / float64(sr.Invocations)
	}
	return sr, nil
}
