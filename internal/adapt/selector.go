package adapt

import (
	"math/rand"
)

// Selector is an adaptation policy's answer to "which candidate service
// should this user bind for this task now?". Implementations receive the
// full candidate list and the current binding and return the replacement
// (possibly the current binding itself, meaning "do not adapt").
type Selector interface {
	Name() string
	Select(user int, task Task, current int) int
}

// QoSPredictor is the prediction interface a predicted-best policy needs:
// the estimated response time of (user, service) and whether an estimate
// exists. core.Model.Predict adapts to this trivially.
type QoSPredictor interface {
	PredictRT(user, service int) (float64, bool)
}

// StaticSelector never adapts: the design-time binding stays forever.
// This is the no-adaptation baseline.
type StaticSelector struct{}

// Name implements Selector.
func (StaticSelector) Name() string { return "static" }

// Select returns the current binding unchanged.
func (StaticSelector) Select(_ int, _ Task, current int) int { return current }

// RandomSelector replaces a degraded service with a uniformly random
// other candidate: adaptation without QoS prediction, the paper's
// implicit strawman for why candidate-side prediction matters.
type RandomSelector struct {
	rng *rand.Rand
}

// NewRandomSelector creates a seeded random selector.
func NewRandomSelector(seed int64) *RandomSelector {
	return &RandomSelector{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Selector.
func (*RandomSelector) Name() string { return "random" }

// Select picks a random candidate different from current when possible.
func (r *RandomSelector) Select(_ int, task Task, current int) int {
	if len(task.Candidates) == 1 {
		return task.Candidates[0]
	}
	for {
		c := task.Candidates[r.rng.Intn(len(task.Candidates))]
		if c != current {
			return c
		}
	}
}

// PredictedSelector picks the candidate with the lowest predicted
// response time — the paper's use case for AMF. Candidates without a
// prediction keep a neutral score so a cold model degrades to the current
// binding rather than thrashing.
type PredictedSelector struct {
	pred QoSPredictor
}

// NewPredictedSelector wraps a QoS predictor.
func NewPredictedSelector(pred QoSPredictor) *PredictedSelector {
	return &PredictedSelector{pred: pred}
}

// Name implements Selector.
func (*PredictedSelector) Name() string { return "predicted" }

// Select returns the candidate with the smallest predicted RT; the
// current binding wins ties and unpredictable candidates are skipped.
func (p *PredictedSelector) Select(user int, task Task, current int) int {
	best := current
	bestRT, haveBest := p.pred.PredictRT(user, current)
	for _, c := range task.Candidates {
		if c == current {
			continue
		}
		rt, ok := p.pred.PredictRT(user, c)
		if !ok {
			continue
		}
		if !haveBest || rt < bestRT {
			best, bestRT, haveBest = c, rt, true
		}
	}
	return best
}

// TPPredictor is the prediction interface for throughput-driven policies.
type TPPredictor interface {
	PredictTP(user, service int) (float64, bool)
}

// PredictedTPSelector picks the candidate with the highest predicted
// throughput — the dual of PredictedSelector for bandwidth-sensitive
// tasks (paper Sec. V evaluates both RT and TP attributes).
type PredictedTPSelector struct {
	pred TPPredictor
}

// NewPredictedTPSelector wraps a throughput predictor.
func NewPredictedTPSelector(pred TPPredictor) *PredictedTPSelector {
	return &PredictedTPSelector{pred: pred}
}

// Name implements Selector.
func (*PredictedTPSelector) Name() string { return "predicted-tp" }

// Select returns the candidate with the largest predicted throughput; the
// current binding wins ties and unpredictable candidates are skipped.
func (p *PredictedTPSelector) Select(user int, task Task, current int) int {
	best := current
	bestTP, haveBest := p.pred.PredictTP(user, current)
	for _, c := range task.Candidates {
		if c == current {
			continue
		}
		tp, ok := p.pred.PredictTP(user, c)
		if !ok {
			continue
		}
		if !haveBest || tp > bestTP {
			best, bestTP, haveBest = c, tp, true
		}
	}
	return best
}

// OracleSelector picks by the environment's true long-run pair quality:
// an upper bound no predictor can beat, used to normalize experiment
// results.
type OracleSelector struct {
	truth func(user, service int) float64
}

// NewOracleSelector wraps a ground-truth function (e.g. the dataset
// generator's PairMean).
func NewOracleSelector(truth func(user, service int) float64) *OracleSelector {
	return &OracleSelector{truth: truth}
}

// Name implements Selector.
func (*OracleSelector) Name() string { return "oracle" }

// Select returns the candidate with the smallest true mean RT.
func (o *OracleSelector) Select(user int, task Task, current int) int {
	best := current
	bestRT := o.truth(user, current)
	for _, c := range task.Candidates {
		if rt := o.truth(user, c); rt < bestRT {
			best, bestRT = c, rt
		}
	}
	return best
}
