package adapt

import (
	"fmt"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

// Environment supplies observed QoS: the response time user sees when
// invoking service during time slice. The dataset generator implements
// this via a small adapter (see Simulation).
type Environment interface {
	InvokeRT(user, service, slice int) float64
}

// ThroughputEnvironment is implemented by environments that also report
// the throughput of each invocation; tasks with a MinTP floor are checked
// against it.
type ThroughputEnvironment interface {
	InvokeTP(user, service, slice int) float64
}

// Observer receives every invocation observation the QoS manager makes —
// the "upload observed QoS data" arrow of the paper's Fig. 3. A prediction
// model's Observe method adapts to this.
type Observer func(stream.Sample)

// Middleware executes one user's workflow against the environment and
// applies the adaptation policy: the execution middleware of Fig. 3.
type Middleware struct {
	wf       Workflow
	user     int
	bindings Bindings
	selector Selector
	observer Observer

	adaptations int
}

// NewMiddleware binds a workflow for one user. A nil observer is allowed
// (observations are dropped).
func NewMiddleware(wf Workflow, user int, selector Selector, observer Observer) (*Middleware, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	if user < 0 {
		return nil, fmt.Errorf("adapt: negative user %d", user)
	}
	if selector == nil {
		return nil, fmt.Errorf("adapt: nil selector")
	}
	return &Middleware{
		wf:       wf,
		user:     user,
		bindings: wf.InitialBindings(),
		selector: selector,
		observer: observer,
	}, nil
}

// Bindings returns a copy of the current working-service assignment.
func (m *Middleware) Bindings() Bindings {
	out := make(Bindings, len(m.bindings))
	copy(out, m.bindings)
	return out
}

// Adaptations returns the total number of binding replacements so far.
func (m *Middleware) Adaptations() int { return m.adaptations }

// TickResult summarizes one end-to-end workflow execution.
type TickResult struct {
	Latency      float64 // end-to-end response time (sum over tasks), seconds
	Violations   int     // tasks whose invocation violated any SLA term
	RTViolations int     // violations of the response-time budget
	TPViolations int     // violations of the throughput floor
	Adaptations  int     // bindings replaced during this tick
}

// Tick executes the workflow once at the given slice: each task's working
// service is invoked, the observation is reported, and tasks that violated
// their SLA (response-time budget, and throughput floor if the environment
// reports throughput) trigger the adaptation policy. now stamps the
// observations.
func (m *Middleware) Tick(env Environment, slice int, now time.Duration) TickResult {
	tpEnv, hasTP := env.(ThroughputEnvironment)
	var res TickResult
	for i, task := range m.wf.Tasks {
		svc := m.bindings[i]
		rt := env.InvokeRT(m.user, svc, slice)
		res.Latency += rt
		if m.observer != nil {
			m.observer(stream.Sample{Time: now, User: m.user, Service: svc, Value: rt})
		}
		violated := false
		if task.SLA > 0 && rt > task.SLA {
			violated = true
			res.RTViolations++
		}
		if task.MinTP > 0 && hasTP {
			if tp := tpEnv.InvokeTP(m.user, svc, slice); tp < task.MinTP {
				violated = true
				res.TPViolations++
			}
		}
		if violated {
			res.Violations++
			// Adaptation action: ask the policy for a replacement.
			if next := m.selector.Select(m.user, task, svc); next != svc {
				m.bindings[i] = next
				m.adaptations++
				res.Adaptations++
			}
		}
	}
	return res
}

// Rebind forces a binding (e.g. an operator action); it must be a valid
// candidate assignment.
func (m *Middleware) Rebind(b Bindings) error {
	if !b.validFor(m.wf) {
		return fmt.Errorf("adapt: bindings %v invalid for workflow %q", b, m.wf.Name)
	}
	copy(m.bindings, b)
	return nil
}
