package adapt_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/adapt"
	"github.com/qoslab/amf/internal/client"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/stream"
)

// servicePredictor adapts the HTTP prediction client to the middleware's
// QoSPredictor interface — the full paper architecture: execution
// middleware on one side of the wire, the shared prediction service on
// the other.
type servicePredictor struct {
	t *testing.T
	c *client.Client
}

func (p servicePredictor) PredictRT(user, service int) (float64, bool) {
	v, err := p.c.Predict(context.Background(),
		fmt.Sprintf("app-%02d", user), fmt.Sprintf("ws-%02d", service))
	if err != nil {
		return 0, false
	}
	return v, true
}

// TestAdaptationThroughPredictionService drives the complete loop of the
// paper's framework (Fig. 3) across a real HTTP boundary: middlewares
// observe QoS, upload it to the prediction service, and when an SLA is
// violated, pick the replacement candidate by querying the service.
func TestAdaptationThroughPredictionService(t *testing.T) {
	gen := dataset.MustNew(dataset.Config{
		Users: 10, Services: 30, Slices: 6,
		Interval: 15 * time.Minute, Rank: 5, Seed: 77,
	})

	rmin, rmax := dataset.ResponseTime.Range()
	cfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	// The QoS manager side: every observation goes to the service.
	observer := func(s stream.Sample) {
		_, err := c.Observe(ctx, []server.Observation{{
			User:    fmt.Sprintf("app-%02d", s.User),
			Service: fmt.Sprintf("ws-%02d", s.Service),
			Value:   s.Value,
		}})
		if err != nil {
			t.Errorf("observe: %v", err)
		}
	}

	wf := adapt.Workflow{
		Name: "integration",
		Tasks: []adapt.Task{
			{Name: "A", Candidates: []int{0, 1, 2, 3, 4}, SLA: 1.2},
			{Name: "B", Candidates: []int{5, 6, 7, 8, 9}, SLA: 1.2},
		},
	}
	selector := adapt.NewPredictedSelector(servicePredictor{t: t, c: c})

	env := genEnv{gen}
	mws := make([]*adapt.Middleware, 10)
	for u := range mws {
		mw, err := adapt.NewMiddleware(wf, u, selector, observer)
		if err != nil {
			t.Fatal(err)
		}
		// Spread users across candidates so the collaborative model has
		// coverage to predict from.
		b := mw.Bindings()
		b[0] = wf.Tasks[0].Candidates[u%5]
		b[1] = wf.Tasks[1].Candidates[u%5]
		if err := mw.Rebind(b); err != nil {
			t.Fatal(err)
		}
		mws[u] = mw
	}

	var firstSlice, lastSlice adapt.TickResult
	var adaptations int
	for slice := 0; slice < gen.Config().Slices; slice++ {
		for u, mw := range mws {
			res := mw.Tick(env, slice, gen.SliceTime(slice)+time.Duration(u))
			if slice == 0 {
				firstSlice.Violations += res.Violations
				firstSlice.Latency += res.Latency
			}
			if slice == gen.Config().Slices-1 {
				lastSlice.Violations += res.Violations
				lastSlice.Latency += res.Latency
			}
		}
	}
	for _, mw := range mws {
		adaptations += mw.Adaptations()
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Every invocation of every tick must have been uploaded.
	wantObs := int64(10 * 2 * gen.Config().Slices)
	if stats.Updates < wantObs {
		t.Fatalf("service saw %d updates, want >= %d", stats.Updates, wantObs)
	}
	if adaptations == 0 {
		t.Fatal("no adaptation actions happened over six slices")
	}
	// The fleet should not get worse as the model learns; allow noise.
	if lastSlice.Latency > firstSlice.Latency*1.5 {
		t.Fatalf("fleet latency worsened: slice0=%.2f last=%.2f", firstSlice.Latency, lastSlice.Latency)
	}
}

// genEnv adapts the generator for the external test package.
type genEnv struct{ g *dataset.Generator }

func (e genEnv) InvokeRT(user, service, slice int) float64 {
	return e.g.Value(dataset.ResponseTime, user, service, slice)
}
