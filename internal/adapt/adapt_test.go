package adapt

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/stream"
)

func validWorkflow() Workflow {
	return Workflow{
		Name: "wf",
		Tasks: []Task{
			{Name: "A", Candidates: []int{0, 1, 2}, SLA: 2},
			{Name: "B", Candidates: []int{3, 4}, SLA: 2},
		},
	}
}

func TestWorkflowValidate(t *testing.T) {
	if err := validWorkflow().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]Workflow{
		"no tasks":      {Name: "w"},
		"unnamed task":  {Tasks: []Task{{Candidates: []int{0}}}},
		"dup task":      {Tasks: []Task{{Name: "A", Candidates: []int{0}}, {Name: "A", Candidates: []int{1}}}},
		"no candidates": {Tasks: []Task{{Name: "A"}}},
		"neg candidate": {Tasks: []Task{{Name: "A", Candidates: []int{-1}}}},
		"dup candidate": {Tasks: []Task{{Name: "A", Candidates: []int{2, 2}}}},
	}
	for name, wf := range cases {
		if err := wf.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestInitialBindings(t *testing.T) {
	wf := validWorkflow()
	b := wf.InitialBindings()
	if len(b) != 2 || b[0] != 0 || b[1] != 3 {
		t.Fatalf("initial bindings = %v", b)
	}
	if !b.validFor(wf) {
		t.Fatal("initial bindings should be valid")
	}
}

func TestBindingsValidFor(t *testing.T) {
	wf := validWorkflow()
	if (Bindings{0}).validFor(wf) {
		t.Fatal("wrong length must be invalid")
	}
	if (Bindings{0, 99}).validFor(wf) {
		t.Fatal("non-candidate binding must be invalid")
	}
	if !(Bindings{2, 4}).validFor(wf) {
		t.Fatal("candidate bindings must be valid")
	}
}

func TestStaticSelectorNeverMoves(t *testing.T) {
	s := StaticSelector{}
	if s.Name() != "static" {
		t.Fatal("name")
	}
	task := Task{Name: "A", Candidates: []int{1, 2, 3}}
	if got := s.Select(0, task, 2); got != 2 {
		t.Fatalf("static moved to %d", got)
	}
}

func TestRandomSelectorAvoidsCurrent(t *testing.T) {
	s := NewRandomSelector(1)
	if s.Name() != "random" {
		t.Fatal("name")
	}
	task := Task{Name: "A", Candidates: []int{1, 2, 3}}
	for i := 0; i < 50; i++ {
		if got := s.Select(0, task, 2); got == 2 {
			t.Fatal("random selector returned the current binding despite alternatives")
		}
	}
	single := Task{Name: "B", Candidates: []int{7}}
	if got := s.Select(0, single, 7); got != 7 {
		t.Fatalf("single candidate must stay, got %d", got)
	}
}

// tablePredictor predicts from a fixed table; missing entries are unknown.
type tablePredictor map[[2]int]float64

func (t tablePredictor) PredictRT(user, service int) (float64, bool) {
	v, ok := t[[2]int{user, service}]
	return v, ok
}

func TestPredictedSelectorPicksBest(t *testing.T) {
	pred := tablePredictor{
		{0, 1}: 3.0,
		{0, 2}: 0.5,
		{0, 3}: 1.5,
	}
	s := NewPredictedSelector(pred)
	if s.Name() != "predicted" {
		t.Fatal("name")
	}
	task := Task{Name: "A", Candidates: []int{1, 2, 3}}
	if got := s.Select(0, task, 1); got != 2 {
		t.Fatalf("predicted selector chose %d, want 2", got)
	}
}

func TestPredictedSelectorSkipsUnknownCandidates(t *testing.T) {
	pred := tablePredictor{{0, 1}: 3.0}
	s := NewPredictedSelector(pred)
	task := Task{Name: "A", Candidates: []int{1, 2}}
	// Candidate 2 is unknown: stay on 1.
	if got := s.Select(0, task, 1); got != 1 {
		t.Fatalf("selector moved to unpredictable candidate %d", got)
	}
}

func TestPredictedSelectorColdModelStays(t *testing.T) {
	s := NewPredictedSelector(tablePredictor{})
	task := Task{Name: "A", Candidates: []int{1, 2}}
	if got := s.Select(0, task, 1); got != 1 {
		t.Fatalf("cold model should keep current binding, got %d", got)
	}
}

func TestOracleSelector(t *testing.T) {
	truth := func(u, s int) float64 { return float64(s) } // lower id = better
	sel := NewOracleSelector(truth)
	if sel.Name() != "oracle" {
		t.Fatal("name")
	}
	task := Task{Name: "A", Candidates: []int{5, 3, 9}}
	if got := sel.Select(0, task, 9); got != 3 {
		t.Fatalf("oracle chose %d, want 3", got)
	}
}

// scriptedEnv returns scripted response times per (service); slice and
// user are ignored.
type scriptedEnv map[int]float64

func (e scriptedEnv) InvokeRT(_, service, _ int) float64 { return e[service] }

func TestMiddlewareTickObservesAndAdapts(t *testing.T) {
	wf := validWorkflow()
	// Service 0 violates (RT 5 > SLA 2); selector replaces with 1.
	env := scriptedEnv{0: 5, 1: 0.5, 2: 0.7, 3: 1, 4: 9}
	pred := tablePredictor{
		{7, 0}: 5, {7, 1}: 0.5, {7, 2}: 0.7,
		{7, 3}: 1, {7, 4}: 9,
	}
	var seen []stream.Sample
	mw, err := NewMiddleware(wf, 7, NewPredictedSelector(pred), func(s stream.Sample) { seen = append(seen, s) })
	if err != nil {
		t.Fatal(err)
	}
	res := mw.Tick(env, 0, time.Second)
	if res.Violations != 1 {
		t.Fatalf("violations = %d, want 1 (service 0)", res.Violations)
	}
	if res.Adaptations != 1 || mw.Adaptations() != 1 {
		t.Fatalf("adaptations = %d/%d, want 1", res.Adaptations, mw.Adaptations())
	}
	if got := mw.Bindings(); got[0] != 1 {
		t.Fatalf("binding after adaptation = %v, want task A on service 1", got)
	}
	if res.Latency != 6 { // 5 (task A on svc 0) + 1 (task B on svc 3)
		t.Fatalf("latency = %g, want 6", res.Latency)
	}
	if len(seen) != 2 || seen[0].Service != 0 || seen[1].Service != 3 {
		t.Fatalf("observer saw %+v", seen)
	}
	// Next tick uses the new binding and has no violations.
	res2 := mw.Tick(env, 0, 2*time.Second)
	if res2.Violations != 0 {
		t.Fatalf("post-adaptation violations = %d", res2.Violations)
	}
	if res2.Latency != 1.5 {
		t.Fatalf("post-adaptation latency = %g, want 1.5", res2.Latency)
	}
}

func TestMiddlewareNilObserverAllowed(t *testing.T) {
	mw, err := NewMiddleware(validWorkflow(), 0, StaticSelector{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mw.Tick(scriptedEnv{0: 1, 3: 1}, 0, 0)
}

func TestMiddlewareConstructorErrors(t *testing.T) {
	if _, err := NewMiddleware(Workflow{}, 0, StaticSelector{}, nil); err == nil {
		t.Error("invalid workflow should error")
	}
	if _, err := NewMiddleware(validWorkflow(), -1, StaticSelector{}, nil); err == nil {
		t.Error("negative user should error")
	}
	if _, err := NewMiddleware(validWorkflow(), 0, nil, nil); err == nil {
		t.Error("nil selector should error")
	}
}

func TestMiddlewareRebind(t *testing.T) {
	mw, _ := NewMiddleware(validWorkflow(), 0, StaticSelector{}, nil)
	if err := mw.Rebind(Bindings{2, 4}); err != nil {
		t.Fatal(err)
	}
	if got := mw.Bindings(); got[0] != 2 || got[1] != 4 {
		t.Fatalf("rebind = %v", got)
	}
	if err := mw.Rebind(Bindings{99, 4}); err == nil {
		t.Fatal("invalid rebind should error")
	}
	// Bindings() must be a copy.
	b := mw.Bindings()
	b[0] = 0
	if mw.Bindings()[0] != 2 {
		t.Fatal("Bindings must return a copy")
	}
}

func TestStaticSelectorNoAdaptationEver(t *testing.T) {
	mw, _ := NewMiddleware(validWorkflow(), 0, StaticSelector{}, nil)
	env := scriptedEnv{0: 100, 3: 100} // everything violates
	for i := 0; i < 5; i++ {
		mw.Tick(env, 0, time.Duration(i))
	}
	if mw.Adaptations() != 0 {
		t.Fatalf("static policy adapted %d times", mw.Adaptations())
	}
}

// scriptedTPEnv adds scripted throughput to scriptedEnv.
type scriptedTPEnv struct {
	scriptedEnv
	tp map[int]float64
}

func (e scriptedTPEnv) InvokeTP(_, service, _ int) float64 { return e.tp[service] }

func TestMiddlewareThroughputFloorTriggersAdaptation(t *testing.T) {
	wf := Workflow{
		Name: "tp-wf",
		Tasks: []Task{
			{Name: "A", Candidates: []int{0, 1}, MinTP: 100},
		},
	}
	env := scriptedTPEnv{
		scriptedEnv: scriptedEnv{0: 0.5, 1: 0.5}, // RT fine for both
		tp:          map[int]float64{0: 50, 1: 500},
	}
	mw, err := NewMiddleware(wf, 0, NewRandomSelector(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := mw.Tick(env, 0, time.Second)
	if res.TPViolations != 1 || res.RTViolations != 0 || res.Violations != 1 {
		t.Fatalf("violations = %+v, want one TP violation", res)
	}
	if got := mw.Bindings(); got[0] != 1 {
		t.Fatalf("binding = %v, want replacement service 1", got)
	}
	// After moving to the high-throughput service: no violation.
	res2 := mw.Tick(env, 0, 2*time.Second)
	if res2.Violations != 0 {
		t.Fatalf("post-adaptation violations = %+v", res2)
	}
}

func TestMiddlewareTPFloorIgnoredWithoutTPEnvironment(t *testing.T) {
	wf := Workflow{
		Name:  "tp-wf",
		Tasks: []Task{{Name: "A", Candidates: []int{0}, MinTP: 100}},
	}
	mw, err := NewMiddleware(wf, 0, StaticSelector{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Plain Environment cannot report throughput: the floor is inert.
	res := mw.Tick(scriptedEnv{0: 0.5}, 0, 0)
	if res.Violations != 0 || res.TPViolations != 0 {
		t.Fatalf("violations = %+v, want none", res)
	}
}

func TestMiddlewareBothSLATermsCountOnce(t *testing.T) {
	wf := Workflow{
		Name:  "combo",
		Tasks: []Task{{Name: "A", Candidates: []int{0}, SLA: 1, MinTP: 100}},
	}
	env := scriptedTPEnv{
		scriptedEnv: scriptedEnv{0: 5},      // RT violated
		tp:          map[int]float64{0: 10}, // TP violated
	}
	mw, err := NewMiddleware(wf, 0, StaticSelector{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := mw.Tick(env, 0, 0)
	if res.RTViolations != 1 || res.TPViolations != 1 {
		t.Fatalf("split counters = %+v", res)
	}
	if res.Violations != 1 {
		t.Fatalf("a task violating both terms should count once: %+v", res)
	}
}

// tpTablePredictor predicts throughput from a fixed table.
type tpTablePredictor map[[2]int]float64

func (t tpTablePredictor) PredictTP(user, service int) (float64, bool) {
	v, ok := t[[2]int{user, service}]
	return v, ok
}

func TestPredictedTPSelectorPicksHighest(t *testing.T) {
	pred := tpTablePredictor{
		{0, 1}: 100,
		{0, 2}: 900,
		{0, 3}: 400,
	}
	s := NewPredictedTPSelector(pred)
	if s.Name() != "predicted-tp" {
		t.Fatal("name")
	}
	task := Task{Name: "A", Candidates: []int{1, 2, 3}}
	if got := s.Select(0, task, 1); got != 2 {
		t.Fatalf("TP selector chose %d, want 2 (highest throughput)", got)
	}
}

func TestPredictedTPSelectorColdStays(t *testing.T) {
	s := NewPredictedTPSelector(tpTablePredictor{})
	task := Task{Name: "A", Candidates: []int{1, 2}}
	if got := s.Select(0, task, 1); got != 1 {
		t.Fatalf("cold TP model should keep current, got %d", got)
	}
}

func TestPredictedTPSelectorSkipsUnknown(t *testing.T) {
	s := NewPredictedTPSelector(tpTablePredictor{{0, 1}: 50})
	task := Task{Name: "A", Candidates: []int{1, 2}}
	if got := s.Select(0, task, 1); got != 1 {
		t.Fatalf("selector moved to unpredictable candidate %d", got)
	}
}
