package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/server"
)

// startService spins up a real prediction service over httptest and
// returns a client against it: the integration path of framework Fig. 3.
func startService(t *testing.T) *Client {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	srv := server.New(core.MustNew(cfg))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL, nil)
}

func seed(t *testing.T, c *Client) {
	t.Helper()
	var obs []server.Observation
	for i := 0; i < 5; i++ {
		for j := 0; j < 6; j++ {
			obs = append(obs, server.Observation{
				User:    fmt.Sprintf("app-%d", i),
				Service: fmt.Sprintf("ws-%d", j),
				Value:   0.3 + float64((i*j)%5),
			})
		}
	}
	resp, err := c.Observe(context.Background(), obs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 30 {
		t.Fatalf("accepted = %d", resp.Accepted)
	}
}

func TestClientHealth(t *testing.T) {
	c := startService(t)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClientObserveAndPredict(t *testing.T) {
	c := startService(t)
	seed(t, c)
	v, err := c.Predict(context.Background(), "app-1", "ws-2")
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 20 {
		t.Fatalf("prediction %g out of range", v)
	}
}

func TestClientPredictNotFound(t *testing.T) {
	c := startService(t)
	seed(t, c)
	if _, err := c.Predict(context.Background(), "ghost", "ws-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestClientBatchAndBest(t *testing.T) {
	c := startService(t)
	seed(t, c)
	ctx := context.Background()
	preds, err := c.PredictBatch(ctx, "app-0", []string{"ws-0", "ws-1", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 || !preds[0].OK || preds[2].OK {
		t.Fatalf("batch = %+v", preds)
	}
	best, val, ok, err := c.BestCandidate(ctx, "app-0", []string{"ws-0", "ws-1", "ws-2"})
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if best == "" || val < 0 {
		t.Fatalf("best = %q %g", best, val)
	}
	// Verify best really is the minimum of the batch.
	all, err := c.PredictBatch(ctx, "app-0", []string{"ws-0", "ws-1", "ws-2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range all {
		if p.OK && p.Value < val {
			t.Fatalf("BestCandidate missed %q (%g < %g)", p.Service, p.Value, val)
		}
	}
}

func TestClientBestCandidateNoneKnown(t *testing.T) {
	c := startService(t)
	seed(t, c)
	_, _, ok, err := c.BestCandidate(context.Background(), "app-0", []string{"ghost-1", "ghost-2"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no candidate should be OK")
	}
}

func TestClientStatsUsersServices(t *testing.T) {
	c := startService(t)
	seed(t, c)
	ctx := context.Background()
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 5 || stats.Services != 6 {
		t.Fatalf("stats = %+v", stats)
	}
	users, err := c.Users(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 5 {
		t.Fatalf("users = %+v", users)
	}
	svcs, err := c.Services(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(svcs) != 6 {
		t.Fatalf("services = %+v", svcs)
	}
}

func TestClientChurnRemove(t *testing.T) {
	c := startService(t)
	seed(t, c)
	ctx := context.Background()
	if err := c.RemoveUser(ctx, "app-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(ctx, "app-0", "ws-0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("departed user should be unknown, got %v", err)
	}
	if err := c.RemoveUser(ctx, "app-0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double removal should be ErrNotFound, got %v", err)
	}
	if err := c.RemoveService(ctx, "ws-0"); err != nil {
		t.Fatal(err)
	}
}

func TestClientOnlineLearningImprovesPrediction(t *testing.T) {
	// End-to-end check of the paper's online property through the HTTP
	// boundary: repeated observations of a pair move its prediction
	// toward the observed value.
	c := startService(t)
	ctx := context.Background()
	target := 3.0
	var obs []server.Observation
	for i := 0; i < 200; i++ {
		obs = append(obs, server.Observation{User: "app", Service: "ws", Value: target})
	}
	if _, err := c.Observe(ctx, obs); err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict(ctx, "app", "ws")
	if err != nil {
		t.Fatal(err)
	}
	if rel := abs(got-target) / target; rel > 0.2 {
		t.Fatalf("after 200 observations prediction %g is %f away from %g", got, rel, target)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestClientBadServerURL(t *testing.T) {
	c := New("http://127.0.0.1:1", nil) // nothing listens there
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestClientFlagged(t *testing.T) {
	c := startService(t)
	seed(t, c)
	resp, err := c.Flagged(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0 flags everything that has a tracker.
	if len(resp.Users) != 5 || len(resp.Services) != 6 {
		t.Fatalf("flagged at 0: %d users %d services", len(resp.Users), len(resp.Services))
	}
	// Negative threshold uses the server default.
	if _, err := c.Flagged(context.Background(), -1); err != nil {
		t.Fatal(err)
	}
}

func TestClientSnapshotETag(t *testing.T) {
	c := startService(t)
	seed(t, c)
	ctx := context.Background()

	data, etag, notModified, err := c.Snapshot(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if notModified || len(data) == 0 || etag == "" {
		t.Fatalf("first fetch: notModified=%v len=%d etag=%q", notModified, len(data), etag)
	}

	// Unchanged state revalidates for free.
	data2, etag2, notModified, err := c.Snapshot(ctx, etag)
	if err != nil {
		t.Fatal(err)
	}
	if !notModified || data2 != nil || etag2 != etag {
		t.Fatalf("revalidation: notModified=%v len=%d etag=%q", notModified, len(data2), etag2)
	}

	// A write invalidates the tag and the next fetch downloads again.
	if _, err := c.Observe(ctx, []server.Observation{{User: "fresh", Service: "ws-0", Value: 1}}); err != nil {
		t.Fatal(err)
	}
	data3, etag3, notModified, err := c.Snapshot(ctx, etag)
	if err != nil {
		t.Fatal(err)
	}
	if notModified || len(data3) == 0 || etag3 == etag {
		t.Fatalf("post-write fetch: notModified=%v len=%d etag=%q", notModified, len(data3), etag3)
	}
}

// TestClientRetryPolicy exercises the cluster-aware retry rules against
// a flaky stub: GETs retry transport errors and 502/503; POSTs retry
// only 503 (rejected before applying), never transport errors.
func TestClientRetryPolicy(t *testing.T) {
	ctx := context.Background()
	var gets, posts atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if gets.Add(1) < 3 {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte(`{"status":"ok"}`))
		case http.MethodPost:
			if posts.Add(1) < 2 {
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte(`{"accepted":1}`))
		}
	}))
	t.Cleanup(stub.Close)

	c := New(stub.URL, nil)
	c.Retries = 3
	c.RetryBackoff = time.Millisecond
	if err := c.Health(ctx); err != nil {
		t.Fatalf("GET with retries: %v (attempts=%d)", err, gets.Load())
	}
	if gets.Load() != 3 {
		t.Errorf("GET attempts = %d, want 3", gets.Load())
	}
	resp, err := c.Observe(ctx, []server.Observation{{User: "u", Service: "s", Value: 1}})
	if err != nil || resp.Accepted != 1 {
		t.Fatalf("POST with 503 retries: %v", err)
	}
	if posts.Load() != 2 {
		t.Errorf("POST attempts = %d, want 2", posts.Load())
	}

	// Zero retries: first failure is final.
	gets.Store(0)
	c0 := New(stub.URL, nil)
	if err := c0.Health(ctx); err == nil {
		t.Error("unretried GET succeeded against failing stub")
	}

	// POSTs never retry transport errors (unknown outcome).
	dead := New("http://127.0.0.1:1", nil)
	dead.Retries = 2
	dead.RetryBackoff = time.Millisecond
	start := time.Now()
	if _, err := dead.Observe(ctx, []server.Observation{{User: "u", Service: "s", Value: 1}}); err == nil {
		t.Error("POST to dead endpoint succeeded")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("POST transport error appears to have been retried")
	}
}
