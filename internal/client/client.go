// Package client is the typed Go client of the QoS prediction service
// (internal/server): the library a cloud application's execution
// middleware uses to upload observed QoS data and fetch predictions for
// candidate-service ranking.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/qoslab/amf/internal/server"
)

// ErrNotFound is returned when the service reports 404 (unknown user or
// service, or no prediction available).
var ErrNotFound = errors.New("client: not found")

// Client talks to one QoS prediction service endpoint — an amfserver
// directly, or an amfgateway fronting a sharded cluster. The zero value
// is not usable; construct with New.
type Client struct {
	base string
	http *http.Client

	// Retries is the number of additional attempts for retryable
	// failures (default 0 = single attempt). What retries is chosen for
	// cluster safety: GETs are retried on transport errors and on
	// 502/503 (reads are idempotent, and a gateway mid-failover answers
	// 502/503 until the new leader is promoted); non-GET requests are
	// retried only on 503 — the service rejected the request before
	// applying it (follower redirect, shutdown drain; the gateway
	// upholds this by answering a non-retryable 500 when a sharded
	// batch was PARTIALLY applied) — and never on transport errors,
	// where the write's outcome is unknown.
	Retries int
	// RetryBackoff is the pause between attempts (default 100ms).
	RetryBackoff time.Duration
}

// New creates a client for the given base URL (e.g. "http://host:8080").
// httpClient may be nil, in which case a client with a 10-second timeout
// is used.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		payload = buf
	}
	for attempt := 0; ; attempt++ {
		retryable, err := c.attempt(ctx, method, path, payload, out)
		if err == nil || !retryable || attempt >= c.Retries {
			return err
		}
		if werr := c.waitRetry(ctx); werr != nil {
			return err
		}
	}
}

// waitRetry sleeps one backoff, bailing early if ctx ends first.
func (c *Client) waitRetry(ctx context.Context) error {
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attempt performs one request and reports whether a failure may be
// retried (see Retries for the policy).
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any) (retryable bool, err error) {
	var reader io.Reader
	if payload != nil {
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return false, fmt.Errorf("client: build request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return method == http.MethodGet, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		var apiErr server.ErrorResponse
		msg := resp.Status
		if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		if resp.StatusCode == http.StatusNotFound {
			return false, fmt.Errorf("client: %s: %w", msg, ErrNotFound)
		}
		retryable = resp.StatusCode == http.StatusServiceUnavailable ||
			(method == http.MethodGet && resp.StatusCode == http.StatusBadGateway)
		return retryable, fmt.Errorf("client: %s %s: %s (HTTP %d)", method, path, msg, resp.StatusCode)
	}
	if out == nil {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, fmt.Errorf("client: decode response: %w", err)
	}
	return false, nil
}

// Snapshot downloads the service's state blob (GET /api/v1/snapshot).
// etag is the validator returned by a previous call ("" fetches
// unconditionally): when the server's state hasn't changed it answers
// 304 and Snapshot returns notModified=true with no data, which is what
// keeps periodic backups, follower bootstraps, and gateway probes cheap.
func (c *Client) Snapshot(ctx context.Context, etag string) (data []byte, newETag string, notModified bool, err error) {
	for attempt := 0; ; attempt++ {
		data, newETag, notModified, err = c.snapshotOnce(ctx, etag)
		if err == nil || attempt >= c.Retries {
			return data, newETag, notModified, err
		}
		if werr := c.waitRetry(ctx); werr != nil {
			return nil, "", false, err
		}
	}
}

func (c *Client) snapshotOnce(ctx context.Context, etag string) ([]byte, string, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/snapshot", nil)
	if err != nil {
		return nil, "", false, fmt.Errorf("client: build request: %w", err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, "", false, fmt.Errorf("client: GET /api/v1/snapshot: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, resp.Header.Get("ETag"), true, nil
	case http.StatusOK:
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", false, fmt.Errorf("client: download snapshot: %w", err)
		}
		return data, resp.Header.Get("ETag"), false, nil
	default:
		return nil, "", false, fmt.Errorf("client: GET /api/v1/snapshot: HTTP %d", resp.StatusCode)
	}
}

// Health checks the /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Observe uploads a batch of QoS observations.
func (c *Client) Observe(ctx context.Context, obs []server.Observation) (server.ObserveResponse, error) {
	var resp server.ObserveResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/observe", server.ObserveRequest{Observations: obs}, &resp)
	return resp, err
}

// Predict fetches the predicted QoS value for one (user, service) pair.
func (c *Client) Predict(ctx context.Context, user, service string) (float64, error) {
	q := url.Values{"user": {user}, "service": {service}}
	var resp server.PredictResponse
	if err := c.do(ctx, http.MethodGet, "/api/v1/predict?"+q.Encode(), nil, &resp); err != nil {
		return 0, err
	}
	return resp.Value, nil
}

// PredictBatch ranks many candidate services for one user in one call.
func (c *Client) PredictBatch(ctx context.Context, user string, services []string) ([]server.BatchPrediction, error) {
	var resp server.BatchPredictResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/predict",
		server.BatchPredictRequest{User: user, Services: services}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Predictions, nil
}

// BestCandidate returns the candidate with the smallest predicted value
// (i.e. the best replacement under a response-time attribute). ok is
// false when no candidate had a prediction.
func (c *Client) BestCandidate(ctx context.Context, user string, services []string) (best string, value float64, ok bool, err error) {
	preds, err := c.PredictBatch(ctx, user, services)
	if err != nil {
		return "", 0, false, err
	}
	for _, p := range preds {
		if !p.OK {
			continue
		}
		if !ok || p.Value < value {
			best, value, ok = p.Service, p.Value, true
		}
	}
	return best, value, ok, nil
}

// Stats fetches service statistics.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var resp server.StatsResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &resp)
	return resp, err
}

// Users lists registered users.
func (c *Client) Users(ctx context.Context) ([]server.EntityInfo, error) {
	var resp []server.EntityInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/users", nil, &resp)
	return resp, err
}

// Services lists registered services.
func (c *Client) Services(ctx context.Context) ([]server.EntityInfo, error) {
	var resp []server.EntityInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/services", nil, &resp)
	return resp, err
}

// RemoveUser deregisters a user (churn departure).
func (c *Client) RemoveUser(ctx context.Context, name string) error {
	q := url.Values{"name": {name}}
	return c.do(ctx, http.MethodDelete, "/api/v1/users?"+q.Encode(), nil, nil)
}

// RemoveService deregisters a service.
func (c *Client) RemoveService(ctx context.Context, name string) error {
	q := url.Values{"name": {name}}
	return c.do(ctx, http.MethodDelete, "/api/v1/services?"+q.Encode(), nil, nil)
}

// Flagged lists users and services the model currently predicts poorly
// (tracked error at or above threshold; pass a negative threshold for the
// server default).
func (c *Client) Flagged(ctx context.Context, threshold float64) (server.FlaggedResponse, error) {
	path := "/api/v1/flagged"
	if threshold >= 0 {
		q := url.Values{"threshold": {strconv.FormatFloat(threshold, 'g', -1, 64)}}
		path += "?" + q.Encode()
	}
	var resp server.FlaggedResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}
