// Package cluster is the scale-out layer of the QoS prediction service:
// a consistent-hash ring that shards users across replica groups, and an
// HTTP gateway (amfgateway) that routes the prediction API by user
// shard, fans large ranking queries out across a group's replicas, and
// drives leader failover. Within one group every replica holds the full
// group state via WAL-shipping replication (internal/server), so reads
// scale with replica count while writes funnel through the group leader.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// Health is a ring member's availability state.
type Health int32

const (
	// Healthy members receive traffic.
	Healthy Health = iota
	// Suspect members failed a recent probe but have not crossed the
	// down threshold; they still receive traffic (one failed probe is
	// usually a blip, and draining on it would flap the ring).
	Suspect
	// Down members failed DownAfter consecutive probes. Ownership is
	// NOT affected: members shard authoritative storage, so a key's
	// owner stays its owner while Down — requests fail loudly instead
	// of silently landing (and stranding data) on a different member.
	// Health feeds the gateway's /healthz, status, and failover logic.
	Down
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	default:
		return "down"
	}
}

// Member is one ring participant (a shard group, in the gateway's use).
// Health is updated concurrently by probes and read by health/status
// reporting; it does not affect key ownership.
type Member struct {
	name   string
	health atomic.Int32
}

// Name returns the member's identity (stable across health changes).
func (m *Member) Name() string { return m.name }

// Health returns the member's current availability state.
func (m *Member) Health() Health { return Health(m.health.Load()) }

// SetHealth updates the member's availability state.
func (m *Member) SetHealth(h Health) { m.health.Store(int32(h)) }

// Ring is a consistent-hash ring with virtual nodes. Each member is
// hashed at vnodes positions; a key belongs to the first member
// clockwise from the key's hash. Membership changes rendezvous
// minimally: adding or removing one member moves only the keys in its
// arcs (~1/N of the keyspace), every other key keeps its owner — which
// is what makes reshards incremental rather than a full reshuffle.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]*Member
	hashes  []uint64  // sorted vnode positions
	owners  []*Member // owners[i] owns hashes[i]
}

// NewRing creates an empty ring with the given virtual-node count per
// member (<= 0 selects the default of 128, which keeps the keyspace
// imbalance between members within a few percent).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	return &Ring{vnodes: vnodes, members: make(map[string]*Member)}
}

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Add inserts a member (idempotent: re-adding returns the existing
// member unchanged) and rebuilds the vnode index.
func (r *Ring) Add(name string) *Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[name]; ok {
		return m
	}
	m := &Member{name: name}
	r.members[name] = m
	r.rebuild()
	return m
}

// Remove deletes a member; its arcs redistribute to the clockwise
// successors.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[name]; !ok {
		return
	}
	delete(r.members, name)
	r.rebuild()
}

// rebuild recomputes the sorted vnode index; callers hold mu.
func (r *Ring) rebuild() {
	n := len(r.members) * r.vnodes
	r.hashes = make([]uint64, 0, n)
	r.owners = make([]*Member, 0, n)
	type vnode struct {
		hash  uint64
		owner *Member
	}
	vns := make([]vnode, 0, n)
	for name, m := range r.members {
		for i := 0; i < r.vnodes; i++ {
			vns = append(vns, vnode{hash: hash64(fmt.Sprintf("%s#%d", name, i)), owner: m})
		}
	}
	sort.Slice(vns, func(i, j int) bool { return vns[i].hash < vns[j].hash })
	for _, v := range vns {
		r.hashes = append(r.hashes, v.hash)
		r.owners = append(r.owners, v.owner)
	}
}

// Members returns the current members in name order.
func (r *Ring) Members() []*Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.members))
	for name := range r.members {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Member, len(names))
	for i, name := range names {
		out[i] = r.members[name]
	}
	return out
}

// Member returns the named member, or nil.
func (r *Ring) Member(name string) *Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members[name]
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member owning key: the first member clockwise from
// the key's hash, regardless of health. Members shard authoritative
// storage — only the natural owner holds the key's data — so a Down
// owner still gets the route and the request fails with an honest
// error the client can retry, instead of writes silently landing on
// (and being stranded in) a different member's store, or reads
// answering from a member that never saw the key. Returns nil only for
// an empty ring.
func (r *Ring) Lookup(key string) *Member {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return nil
	}
	h := hash64(key)
	// First vnode clockwise of h (wrapping at the top).
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if start == len(r.hashes) {
		start = 0
	}
	return r.owners[start]
}

// hash64 is FNV-1a, the stdlib's stable non-cryptographic hash — the
// placement only needs uniformity, and stability across processes so
// every gateway agrees on ownership.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
