package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/store"
)

// benchBackend builds one in-memory amfserver over httptest and seeds
// it with users x services observations via the HTTP boundary.
func benchBackend(b *testing.B, users, services int) (*server.Server, *httptest.Server) {
	b.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg), server.WithLogger(quietLogger()))
	ts := httptest.NewServer(svc.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(func() { svc.Close() })
	// Batches of 5000 stay under the server's observe batch cap.
	var obs []server.Observation
	flush := func() {
		if len(obs) > 0 {
			benchPost(b, ts.URL+"/api/v1/observe", server.ObserveRequest{Observations: obs})
			obs = obs[:0]
		}
	}
	for i := 0; i < users; i++ {
		for j := 0; j < services; j++ {
			obs = append(obs, server.Observation{
				User:    fmt.Sprintf("bu%d", i),
				Service: fmt.Sprintf("bs%d", j),
				Value:   0.5 + float64((i*7+j)%9),
			})
			if len(obs) == 5000 {
				flush()
			}
		}
	}
	flush()
	return svc, ts
}

func benchPost(b *testing.B, url string, body any) {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
}

// benchGateway fronts the given replica URLs with one gateway group and
// serves it over httptest (so both arms of the comparison pay the same
// real HTTP cost).
func benchGateway(b *testing.B, replicas []string, fanout int) *httptest.Server {
	b.Helper()
	g, err := New(Config{
		Groups:          [][]string{replicas},
		FanOutThreshold: fanout,
		ProbeInterval:   time.Hour, // no background probes during timing
		Logger:          quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	ts := httptest.NewServer(g.Handler())
	b.Cleanup(ts.Close)
	return ts
}

// runTimed drives one request per op while recording per-op latency,
// then reports the 50th and 95th percentiles next to the mean — the
// issue's gateway-overhead budget is judged at p50, and HTTP latency is
// tail-skewed enough that the mean alone overstates it.
func runTimed(b *testing.B, op func()) {
	op() // warm the connection pool
	lat := make([]time.Duration, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		op()
		lat[i] = time.Since(t0)
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2]), "p50-ns/op")
	b.ReportMetric(float64(lat[len(lat)*95/100]), "p95-ns/op")
}

func benchGet(b *testing.B, client *http.Client, url string) {
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
}

func benchPostRaw(b *testing.B, client *http.Client, url string, body []byte) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
}

// BenchmarkGatewayPredict prices the proxy hop on the cheapest request,
// a single prediction: direct is one HTTP round trip, gateway is two.
// This is the worst case for relative overhead — the backend does
// microseconds of work, so the extra hop IS the cost.
func BenchmarkGatewayPredict(b *testing.B) {
	_, ts := benchBackend(b, 8, 16)
	gw := benchGateway(b, []string{ts.URL}, -1)
	client := &http.Client{}
	path := "/api/v1/predict?user=bu1&service=bs2"
	for _, arm := range []struct{ name, base string }{
		{"direct", ts.URL}, {"gateway", gw.URL},
	} {
		b.Run(arm.name, func(b *testing.B) {
			url := arm.base + path
			runTimed(b, func() { benchGet(b, client, url) })
		})
	}
}

// BenchmarkGatewayRank prices the proxy hop on a realistic adaptation
// query — ranking a large candidate set — where backend work dominates
// and the gateway's raw pass-through keeps the added latency within the
// issue's <=15% p50 budget (this is the workload the budget is judged
// on). The fanout arm splits the same candidates across three replicas.
func BenchmarkGatewayRank(b *testing.B) {
	svc, ts := benchBackend(b, 8, 2000)
	candidates := make([]string, 2000)
	for i := range candidates {
		candidates[i] = fmt.Sprintf("bs%d", i)
	}
	body, err := json.Marshal(server.RankRequest{User: "bu1", Services: candidates, TopK: 10})
	if err != nil {
		b.Fatal(err)
	}

	gw := benchGateway(b, []string{ts.URL}, -1) // pure proxy, no fan-out
	ts2 := httptest.NewServer(svc.Handler())
	b.Cleanup(ts2.Close)
	ts3 := httptest.NewServer(svc.Handler())
	b.Cleanup(ts3.Close)
	gwFan := benchGateway(b, []string{ts.URL, ts2.URL, ts3.URL}, 100)

	client := &http.Client{}
	for _, arm := range []struct{ name, base string }{
		{"direct", ts.URL}, {"gateway", gw.URL}, {"gateway_fanout3", gwFan.URL},
	} {
		b.Run(arm.name, func(b *testing.B) {
			url := arm.base + "/api/v1/rank"
			runTimed(b, func() { benchPostRaw(b, client, url, body) })
		})
	}
}

// BenchmarkGatewayRankAll is the paper's adaptation query — "rank every
// known service for this user, top k" — through both paths. The request
// body is ~50 bytes and the backend scans the full catalog, so this is
// the workload where the proxy's pass-through overhead must disappear
// into the backend's scan time (the issue's <=15% p50 budget).
//
// The two paths are sampled interleaved in ONE timing loop rather than
// as separate sub-benchmark arms: on shared hardware the machine drifts
// more between two arms run minutes apart than the proxy hop costs, so
// a paired comparison is the only way to measure the overhead rather
// than the weather. ns/op therefore covers one direct + one gateway
// request; the per-path percentiles and the headline overhead-pct ride
// along as custom metrics (archived by benchjson under "extra").
func BenchmarkGatewayRankAll(b *testing.B) {
	svc, ts := benchBackend(b, 4, 96000)
	// Serial scan on the backend: a loaded server has no idle cores to
	// fan a single query across, and a backend that saturates every core
	// per request would charge the proxy hop for scheduling delay it
	// didn't cause.
	svc.RankParallelThreshold = -1
	gw := benchGateway(b, []string{ts.URL}, -1)
	body := []byte(`{"user":"bu1","topk":10}`)
	client := &http.Client{}
	direct := ts.URL + "/api/v1/rank"
	gateway := gw.URL + "/api/v1/rank"
	benchPostRaw(b, client, direct, body) // warm both connection pools
	benchPostRaw(b, client, gateway, body)
	dl := make([]time.Duration, b.N)
	gl := make([]time.Duration, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		benchPostRaw(b, client, direct, body)
		t1 := time.Now()
		benchPostRaw(b, client, gateway, body)
		dl[i] = t1.Sub(t0)
		gl[i] = time.Since(t1)
	}
	b.StopTimer()
	sort.Slice(dl, func(i, j int) bool { return dl[i] < dl[j] })
	sort.Slice(gl, func(i, j int) bool { return gl[i] < gl[j] })
	d50, g50 := dl[len(dl)/2], gl[len(gl)/2]
	b.ReportMetric(float64(d50), "direct-p50-ns/op")
	b.ReportMetric(float64(dl[len(dl)*95/100]), "direct-p95-ns/op")
	b.ReportMetric(float64(g50), "gateway-p50-ns/op")
	b.ReportMetric(float64(gl[len(gl)*95/100]), "gateway-p95-ns/op")
	b.ReportMetric(100*(float64(g50)-float64(d50))/float64(d50), "overhead-pct")
}

// BenchmarkReplicationLag measures steady-state WAL-shipping latency:
// each op appends one observation on the leader and spins until the
// follower has applied it, so ns/op IS the observe-to-replicated lag
// (dominated by the leader's long-poll wakeup tick).
func BenchmarkReplicationLag(b *testing.B) {
	dir := b.TempDir()
	mgr, err := store.Open(dir, store.Options{
		Sync:               store.SyncOff, // isolate shipping latency from fsync cost
		CheckpointInterval: time.Hour,
		Logger:             quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	leader := server.New(core.MustNew(cfg), server.WithLogger(quietLogger()))
	if _, err := leader.AttachDurable(mgr); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(leader.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(func() { leader.Close() })

	folCfg := core.DefaultConfig(-0.007, 0, 20)
	folCfg.Expiry = 0
	follower := server.New(core.MustNew(folCfg), server.WithLogger(quietLogger()))
	b.Cleanup(func() { follower.Close() })
	rp, err := follower.StartFollower(server.FollowerConfig{
		Leader:        ts.URL,
		WaitMS:        1000,
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}

	client := &http.Client{}
	body := []byte(`{"observations":[{"user":"lu","service":"ls","value":1.5}]}`)
	benchPostRaw(b, client, ts.URL+"/api/v1/observe", body)
	waitApplied(b, rp, mgr.WAL().LastSeq())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPostRaw(b, client, ts.URL+"/api/v1/observe", body)
		waitApplied(b, rp, mgr.WAL().LastSeq())
	}
}

func waitApplied(b *testing.B, rp *server.Replicator, seq uint64) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for rp.AppliedSeq() < seq {
		if time.Now().After(deadline) {
			b.Fatalf("follower stuck at seq %d, want %d", rp.AppliedSeq(), seq)
		}
		time.Sleep(50 * time.Microsecond)
	}
}
