package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/qoslab/amf/internal/obs"
)

// This file is the metrics-federation half of the gateway's
// observability: GET /api/v1/cluster/metrics scrapes every replica's
// /metrics with the strict parser, re-exports the union with
// group/replica origin labels (obs.WriteFederated), and appends derived
// cluster gauges — replication lag in sequences and seconds, checkpoint
// age, epoch and fenced state per replica — so one scrape sees the
// whole cluster.

// scrapeTimeout bounds one federation pass; replica scrapes run
// concurrently inside it.
const scrapeTimeout = 5 * time.Second

// derivedFamily describes one gauge family the gateway computes from
// probe state and scraped pages rather than re-exporting.
type derivedFamily struct{ name, help string }

var derivedFamilies = []derivedFamily{
	{"amf_cluster_replication_lag_seqs",
		"WAL records a follower is behind its group leader (leader wal_seq - follower applied_seq, as of the last probe)."},
	{"amf_cluster_replication_lag_seconds",
		"How long a follower has continuously been behind its leader's WAL tail (0 when caught up)."},
	{"amf_cluster_checkpoint_age_seconds",
		"Per-replica checkpoint age from the federated scrape (0 for non-durable replicas)."},
	{"amf_cluster_replica_epoch",
		"Durable directory claim epoch per replica (0 = non-durable)."},
	{"amf_cluster_replica_fenced",
		"1 when a replica lost its durable directory claim and no longer accepts writes."},
}

// DerivedFederationMetricNames lists the gauge families synthesized by
// GET /api/v1/cluster/metrics — they exist on no registry, so the
// metrics-docs lint needs them spelled out.
func DerivedFederationMetricNames() []string {
	out := make([]string, len(derivedFamilies))
	for i, d := range derivedFamilies {
		out[i] = d.name
	}
	return out
}

// scrapedReplica is one replica's parsed /metrics page (nil on scrape
// failure) plus its origin labels.
type scrapedReplica struct {
	grp *group
	rep *replica
	tm  *obs.TextMetrics
}

// handleClusterMetrics serves the federated cluster view. Scrape
// failures cost that replica's series (and bump
// amf_cluster_scrape_errors_total) but never fail the whole page — a
// half-blind scrape during an outage is exactly when federation earns
// its keep.
func (g *Gateway) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), scrapeTimeout)
	defer cancel()

	var scrapes []*scrapedReplica
	for _, grp := range g.groups {
		for _, rep := range grp.replicas {
			scrapes = append(scrapes, &scrapedReplica{grp: grp, rep: rep})
		}
	}
	var wg sync.WaitGroup
	for _, sc := range scrapes {
		wg.Add(1)
		go func(sc *scrapedReplica) {
			defer wg.Done()
			tm, err := g.scrapeReplica(ctx, sc.rep.url)
			if err != nil {
				g.scrapeErrors.Inc()
				g.log.Warn("federation scrape failed", "replica", sc.rep.url, "err", err)
				return
			}
			sc.tm = tm
		}(sc)
	}
	wg.Wait()

	var buf bytes.Buffer
	g.writeDerived(&buf, scrapes)

	// The gateway's own registry joins as a page like any replica's, so
	// families both sides export (amf_build_info) merge under one
	// HELP/TYPE instead of colliding.
	pages := make([]obs.FederatedPage, 0, len(scrapes)+1)
	if self, err := g.selfPage(); err == nil {
		pages = append(pages, obs.FederatedPage{
			Labels:  [][2]string{{"group", "gateway"}, {"replica", "gateway"}},
			Metrics: self,
		})
	}
	for _, sc := range scrapes {
		if sc.tm == nil {
			continue
		}
		pages = append(pages, obs.FederatedPage{
			Labels:  [][2]string{{"group", sc.grp.name}, {"replica", sc.rep.url}},
			Metrics: sc.tm,
		})
	}
	if err := obs.WriteFederated(&buf, pages); err != nil {
		g.writeError(w, http.StatusInternalServerError, "federate: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// scrapeReplica fetches and strictly parses one replica's /metrics.
func (g *Gateway) scrapeReplica(ctx context.Context, url string) (*obs.TextMetrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return obs.ParseMetrics(resp.Body)
}

// selfPage renders and re-parses the gateway's own registry.
func (g *Gateway) selfPage() (*obs.TextMetrics, error) {
	var buf bytes.Buffer
	if err := g.reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return obs.ParseMetrics(&buf)
}

// writeDerived emits the synthesized cluster gauges. Lag in sequences
// compares each follower's applied sequence (probe state) against its
// group leader's WAL tail; lag in seconds and epoch/fenced come from
// probe state too, so they survive scrape failures; checkpoint age is
// lifted from the scraped pages (the probe does not carry it).
func (g *Gateway) writeDerived(buf *bytes.Buffer, scrapes []*scrapedReplica) {
	sampleLine := func(name string, grp *group, rep *replica, value string) {
		fmt.Fprintf(buf, "%s{group=%q,replica=%q} %s\n", name, grp.name, rep.url, value)
	}
	for _, d := range derivedFamilies {
		fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s gauge\n", d.name, d.help, d.name)
		switch d.name {
		case "amf_cluster_replication_lag_seqs":
			for _, sc := range scrapes {
				lead := sc.grp.leader.Load()
				if lead == nil || sc.rep == lead || sc.rep.role.Load() == 1 {
					continue
				}
				lag := int64(lead.walSeq.Load()) - int64(sc.rep.appliedSeq.Load())
				if lag < 0 {
					lag = 0
				}
				sampleLine(d.name, sc.grp, sc.rep, strconv.FormatInt(lag, 10))
			}
		case "amf_cluster_replication_lag_seconds":
			for _, sc := range scrapes {
				if sc.rep.role.Load() == 1 {
					continue
				}
				secs := math.Float64frombits(sc.rep.lagSecs.Load())
				sampleLine(d.name, sc.grp, sc.rep, strconv.FormatFloat(secs, 'g', -1, 64))
			}
		case "amf_cluster_checkpoint_age_seconds":
			for _, sc := range scrapes {
				if sc.tm == nil {
					continue
				}
				age, ok := sc.tm.Value("amf_checkpoint_age_seconds", nil)
				if !ok {
					age = 0
				}
				sampleLine(d.name, sc.grp, sc.rep, strconv.FormatFloat(age, 'g', -1, 64))
			}
		case "amf_cluster_replica_epoch":
			for _, sc := range scrapes {
				sampleLine(d.name, sc.grp, sc.rep, strconv.FormatUint(sc.rep.epoch.Load(), 10))
			}
		case "amf_cluster_replica_fenced":
			for _, sc := range scrapes {
				v := "0"
				if sc.rep.fenced.Load() {
					v = "1"
				}
				sampleLine(d.name, sc.grp, sc.rep, v)
			}
		}
	}
}
