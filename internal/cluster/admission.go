package cluster

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/obs/trace"
	"github.com/qoslab/amf/internal/server"
)

// This file is the gateway's slice of the overload control plane: the
// SLO class header rides through the proxy to the backends, and —
// when edge shedding is enabled — sheddable-class requests aimed at a
// shard group that reports saturation are refused at the gateway,
// before they cost a backend round trip. Saturation is free
// information: every probe round already fetches each replica's
// /api/v1/cluster/status, which now carries the server's rolling shed
// rate, so the edge decision adds no extra traffic.

// edgeShedReason is the X-Amf-Shed-Reason value for gateway refusals.
const edgeShedReason = "edge_saturation"

// classify stamps the request's SLO class (parsed from the
// X-Amf-Slo-Class header, default standard) on the context, so every
// downstream proxy leg and the edge-shed check read it without
// re-parsing. Called from timed() next to trace-root minting.
func classify(r *http.Request) *http.Request {
	return r.WithContext(control.NewContext(r.Context(), control.ClassFromHeader(r.Header)))
}

// stampClass propagates the context's SLO class onto an outgoing
// backend request, so a backend running its own admission gate applies
// the same class the client declared. A header-map assignment, nothing
// else — the raw pass-through path stays raw.
func stampClass(req *http.Request, class control.Class) {
	req.Header[control.ClassHeader] = []string{class.String()}
}

// shedRate returns the replica's last-probed shed rate.
func (rep *replica) shedRateValue() float64 {
	return math.Float64frombits(rep.shedRate.Load())
}

// maxShedRate returns the highest shed rate any healthy replica of the
// group reported on the last probe round. The max (not the mean) is
// deliberate: writes concentrate on the leader, so one saturated
// replica is enough for the class of traffic that lands there.
func (grp *group) maxShedRate() float64 {
	rate := 0.0
	for _, rep := range grp.replicas {
		if rep.Health() == Down {
			continue
		}
		if r := rep.shedRateValue(); r > rate {
			rate = r
		}
	}
	return rate
}

// saturated reports whether the group's probed shed rate crossed the
// edge-shed threshold.
func (g *Gateway) saturated(grp *group) bool {
	return grp.maxShedRate() >= g.cfg.ShedThreshold
}

// edgeShed refuses a sheddable-class request whose target group(s)
// report saturation, writing the standard shed contract (429,
// Retry-After, X-Amf-Shed-Reason: edge_saturation). Returns true when
// the request was shed; callers return immediately then. Only the
// sheddable class is ever shed at the edge — standard and critical
// always reach the backend, whose own gate makes the finer-grained
// call with live queue state.
func (g *Gateway) edgeShed(w http.ResponseWriter, r *http.Request, grps ...*group) bool {
	if !g.cfg.EdgeShed {
		return false
	}
	if control.FromContext(r.Context()) != control.Sheddable {
		return false
	}
	for _, grp := range grps {
		if grp == nil || !g.saturated(grp) {
			continue
		}
		if sp := trace.FromContext(r.Context()); sp != nil {
			sp.Annotate("edge_shed", 1)
			sp.SetError()
		}
		g.edgeSheds.Inc()
		// One probe interval is the soonest the gateway's view of the
		// group can improve, so that is the honest retry hint (floor 1s).
		w.Header().Set("Retry-After", retryAfterCeil(g.cfg.ProbeInterval))
		w.Header().Set(server.ShedReasonHeader, edgeShedReason)
		g.writeError(w, http.StatusTooManyRequests,
			"overloaded: shard group %s is saturated (shed rate %.2f >= %.2f); sheddable request refused at the edge",
			grp.name, grp.maxShedRate(), g.cfg.ShedThreshold)
		return true
	}
	return false
}

// unavailable writes the gateway's 503 for a request with no routable
// shard group. Retry-After is part of the shed/unavailable contract:
// one probe interval is when routing state can next change.
func (g *Gateway) unavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", retryAfterCeil(g.cfg.ProbeInterval))
	g.writeError(w, http.StatusServiceUnavailable, "no shard groups available")
}

// retryAfterCeil renders a duration as a whole-second Retry-After
// value, minimum 1.
func retryAfterCeil(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
