package cluster

import (
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/engine"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/store"
)

// TestMetricsDocumented is the metrics-docs lint behind `make
// lint-metrics`: it instantiates every registry the project can build —
// a server with all optional subsystems attached (durable store,
// parallel training, follower replication), the gateway, and the
// federation-derived gauges — and fails if any amf_* family name is
// missing from README.md's metrics tables. Adding a metric without
// documenting it breaks `make ci`.
func TestMetricsDocumented(t *testing.T) {
	runtime := map[string]bool{}
	collect := func(r *obs.Registry) {
		for _, name := range r.Families() {
			runtime[name] = true
		}
	}

	// Server with every optional subsystem lit: parallel training
	// (amf_train_*), a durable store (amf_wal_*, amf_checkpoint*,
	// amf_recovery_*, amf_journal_errors_total).
	dir := t.TempDir()
	mgr, err := store.Open(dir, store.Options{
		Sync:               store.SyncAlways,
		CheckpointInterval: time.Hour,
		Logger:             quietLogger(),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer mgr.Close()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.NewWithEngine(
		engine.New(core.MustNew(cfg), engine.Config{TrainWorkers: 2}),
		server.WithLogger(quietLogger()))
	defer svc.Close()
	if _, err := svc.AttachDurable(mgr); err != nil {
		t.Fatalf("AttachDurable: %v", err)
	}
	// The SLO admission gate (amf_admission_*) and the epoch controller
	// (amf_control_*); the hour-long epoch keeps the controller idle.
	svc.EnableAdmission(server.AdmissionConfig{})
	svc.StartAdaptation(server.AdaptationConfig{Epoch: time.Hour})
	collect(svc.Registry())

	// A follower adds the replication families (amf_replication_*); it
	// needs a durable leader to bootstrap from.
	leader, leaderMgr, _ := durableBackend(t, t.TempDir())
	tsLeader := httptest.NewServer(leader.Handler())
	t.Cleanup(func() { leaderMgr.Close() })
	t.Cleanup(leader.Close)
	t.Cleanup(tsLeader.Close)
	folCfg := core.DefaultConfig(-0.007, 0, 20)
	folCfg.Expiry = 0
	follower := server.New(core.MustNew(folCfg), server.WithLogger(quietLogger()))
	defer follower.Close()
	if _, err := follower.StartFollower(server.FollowerConfig{
		Leader:        tsLeader.URL,
		WaitMS:        100,
		RetryInterval: 20 * time.Millisecond,
	}); err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	collect(follower.Registry())

	// The gateway's registry plus the gauges GET /api/v1/cluster/metrics
	// synthesizes (they live on no registry).
	g := newGateway(t, [][]string{{tsLeader.URL}}, nil)
	collect(g.Registry())
	for _, name := range DerivedFederationMetricNames() {
		runtime[name] = true
	}

	// Documented names: every amf_* token inside a README table row.
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	nameRE := regexp.MustCompile(`amf_[a-z0-9_]+`)
	documented := map[string]bool{}
	for _, line := range strings.Split(string(readme), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, name := range nameRE.FindAllString(line, -1) {
			documented[name] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("found no amf_* names in README.md table rows — metrics tables missing?")
	}

	var missing []string
	for name := range runtime {
		// Histogram families expose _bucket/_sum/_count series under the
		// family name; the table documents the family.
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("metric families missing from README.md's metrics tables (add a row per name):\n  %s",
			strings.Join(missing, "\n  "))
	}
}
