package cluster

import (
	"fmt"
	"testing"
)

func TestRingLookupDeterministic(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	for _, name := range []string{"shard-0", "shard-1", "shard-2"} {
		a.Add(name)
		b.Add(name)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("user-%d", i)
		if ma, mb := a.Lookup(key), b.Lookup(key); ma.Name() != mb.Name() {
			t.Fatalf("key %q: ring A says %s, ring B says %s", key, ma.Name(), mb.Name())
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if r.VNodes() != 128 {
		t.Fatalf("default vnodes = %d", r.VNodes())
	}
	if r.Lookup("anything") != nil {
		t.Fatal("empty ring should return nil")
	}
	m := r.Add("only")
	if got := r.Lookup("anything"); got != m {
		t.Fatalf("single-member ring routed to %v", got)
	}
	// Even a Down sole member still owns everything (fallback).
	m.SetHealth(Down)
	if got := r.Lookup("anything"); got != m {
		t.Fatal("sole Down member should still be the fallback owner")
	}
}

func TestRingAddIdempotentAndRemove(t *testing.T) {
	r := NewRing(32)
	m1 := r.Add("a")
	m2 := r.Add("a")
	if m1 != m2 {
		t.Fatal("re-adding a member should return the existing one")
	}
	r.Add("b")
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	r.Remove("a")
	r.Remove("a") // idempotent
	if r.Len() != 1 {
		t.Fatalf("len after remove = %d", r.Len())
	}
	if got := r.Lookup("any"); got.Name() != "b" {
		t.Fatalf("after removing a, key routed to %s", got.Name())
	}
	if r.Member("a") != nil || r.Member("b") == nil {
		t.Fatal("Member lookup inconsistent")
	}
}

func TestRingBalance(t *testing.T) {
	// With 128 vnodes per member the per-member share of a large keyset
	// should be within a reasonable band of the fair share.
	r := NewRing(128)
	const members = 4
	for i := 0; i < members; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	const keys = 20000
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("user-%d", i)).Name()]++
	}
	fair := keys / members
	for name, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("member %s owns %d keys (fair share %d)", name, n, fair)
		}
	}
	if len(counts) != members {
		t.Fatalf("only %d members received keys", len(counts))
	}
}

func TestRingMinimalMovement(t *testing.T) {
	// Consistent hashing's defining property: adding one member moves
	// roughly 1/N of the keys and nothing else.
	r := NewRing(128)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	const keys = 10000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Lookup(fmt.Sprintf("user-%d", i)).Name()
	}
	r.Add("shard-3")
	moved, movedElsewhere := 0, 0
	for i := 0; i < keys; i++ {
		after := r.Lookup(fmt.Sprintf("user-%d", i)).Name()
		if after != before[i] {
			moved++
			if after != "shard-3" {
				movedElsewhere++
			}
		}
	}
	// Expected movement is keys/4 = 2500; allow generous slack.
	if moved > keys/2 {
		t.Errorf("adding one member moved %d/%d keys — not incremental", moved, keys)
	}
	if movedElsewhere != 0 {
		t.Errorf("%d keys moved between PRE-EXISTING members; only the new member may gain keys", movedElsewhere)
	}
	// Removing it restores the original assignment exactly.
	r.Remove("shard-3")
	for i := 0; i < keys; i++ {
		if got := r.Lookup(fmt.Sprintf("user-%d", i)).Name(); got != before[i] {
			t.Fatalf("key user-%d moved from %s to %s after add+remove", i, before[i], got)
		}
	}
}

// TestRingLookupIgnoresHealth pins authoritative routing: members shard
// storage, so a Down member keeps owning its keys — requests must fail
// loudly at the owner rather than be silently re-homed onto a member
// that does not hold the data (writes would be stranded there forever;
// reads would answer "unknown user" for users that exist).
func TestRingLookupIgnoresHealth(t *testing.T) {
	r := NewRing(128)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("shard-%d", i))
	}
	const keys = 3000
	owner := make([]string, keys)
	for i := range owner {
		owner[i] = r.Lookup(fmt.Sprintf("user-%d", i)).Name()
	}
	for _, h := range []Health{Suspect, Down, Healthy} {
		r.Member("shard-1").SetHealth(h)
		for i := 0; i < keys; i++ {
			if got := r.Lookup(fmt.Sprintf("user-%d", i)).Name(); got != owner[i] {
				t.Fatalf("key user-%d moved from %s to %s when shard-1 went %s",
					i, owner[i], got, h)
			}
		}
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{Healthy: "healthy", Suspect: "suspect", Down: "down"} {
		if h.String() != want {
			t.Errorf("%d.String() = %q", h, h.String())
		}
	}
}

func TestRingMembers(t *testing.T) {
	r := NewRing(16)
	for _, n := range []string{"c", "a", "b"} {
		r.Add(n)
	}
	ms := r.Members()
	if len(ms) != 3 || ms[0].Name() != "a" || ms[1].Name() != "b" || ms[2].Name() != "c" {
		t.Fatalf("Members() = %v", ms)
	}
}
