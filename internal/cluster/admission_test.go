package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/server"
)

// stubReplica is a fake amfserver: it answers the probe's status
// endpoint with a canned shed rate and records the SLO-class header of
// every proxied API request, so tests can pin both halves of the
// gateway's admission role (edge shedding in, class propagation out).
type stubReplica struct {
	ts *httptest.Server

	mu       sync.Mutex
	shedRate float64
	classes  map[string]string // path → last observed class header
	hits     map[string]int
}

func newStubReplica(t *testing.T, shedRate float64) *stubReplica {
	t.Helper()
	sb := &stubReplica{shedRate: shedRate, classes: map[string]string{}, hits: map[string]int{}}
	sb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/cluster/status" {
			sb.mu.Lock()
			rate := sb.shedRate
			sb.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(server.ClusterStatusResponse{Role: "leader", ShedRate: rate})
			return
		}
		sb.mu.Lock()
		sb.classes[r.URL.Path] = r.Header.Get(control.ClassHeader)
		sb.hits[r.URL.Path]++
		sb.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}"))
	}))
	t.Cleanup(sb.ts.Close)
	return sb
}

func (sb *stubReplica) classFor(path string) string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.classes[path]
}

func (sb *stubReplica) hitCount(path string) int {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.hits[path]
}

func (sb *stubReplica) setShedRate(r float64) {
	sb.mu.Lock()
	sb.shedRate = r
	sb.mu.Unlock()
}

func classedGwReq(t *testing.T, g *Gateway, method, path, class string, body any) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	var req *http.Request
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		req = httptest.NewRequest(method, path, bytes.NewReader(buf))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	if class != "" {
		req.Header.Set(control.ClassHeader, class)
	}
	g.Handler().ServeHTTP(w, req)
	return w
}

// TestGatewayEdgeShed: a saturated group (probed shed rate over the
// threshold) causes sheddable-class requests to be refused at the
// gateway with the full shed contract — 429, Retry-After,
// X-Amf-Shed-Reason: edge_saturation, no backend round trip — while
// standard and critical traffic still reaches the backend.
func TestGatewayEdgeShed(t *testing.T) {
	sb := newStubReplica(t, 0.9)
	g := newGateway(t, [][]string{{sb.ts.URL}}, func(c *Config) {
		c.EdgeShed = true
		c.ShedThreshold = 0.5
	})

	// Sheddable predict: shed at the edge.
	w := classedGwReq(t, g, http.MethodGet, "/api/v1/predict?user=u1&service=s1", "sheddable", nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("sheddable predict: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(server.ShedReasonHeader); got != edgeShedReason {
		t.Fatalf("shed reason %q, want %q", got, edgeShedReason)
	}
	if ra, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", w.Header().Get("Retry-After"))
	}
	if n := sb.hitCount("/api/v1/predict"); n != 0 {
		t.Fatalf("edge-shed request reached the backend (%d hits)", n)
	}
	if got := g.edgeSheds.Value(); got != 1 {
		t.Fatalf("edge shed counter = %d, want 1", got)
	}

	// Sheddable observe and rank: same contract.
	obsBody := server.ObserveRequest{Observations: []server.Observation{{User: "u1", Service: "s1", Value: 1}}}
	if w := classedGwReq(t, g, http.MethodPost, "/api/v1/observe", "sheddable", obsBody); w.Code != http.StatusTooManyRequests {
		t.Fatalf("sheddable observe: status %d, want 429: %s", w.Code, w.Body.String())
	}
	rankBody := server.RankRequest{User: "u1", TopK: 3}
	if w := classedGwReq(t, g, http.MethodPost, "/api/v1/rank", "sheddable", rankBody); w.Code != http.StatusTooManyRequests {
		t.Fatalf("sheddable rank: status %d, want 429: %s", w.Code, w.Body.String())
	}
	if got := g.edgeSheds.Value(); got != 3 {
		t.Fatalf("edge shed counter = %d, want 3", got)
	}

	// Standard and critical pass through even at full saturation, and the
	// class header rides to the backend.
	if w := classedGwReq(t, g, http.MethodGet, "/api/v1/predict?user=u1&service=s1", "", nil); w.Code != http.StatusOK {
		t.Fatalf("standard predict: status %d: %s", w.Code, w.Body.String())
	}
	if got := sb.classFor("/api/v1/predict"); got != "standard" {
		t.Fatalf("propagated class %q, want standard", got)
	}
	if w := classedGwReq(t, g, http.MethodPost, "/api/v1/observe", "critical", obsBody); w.Code != http.StatusOK {
		t.Fatalf("critical observe: status %d: %s", w.Code, w.Body.String())
	}
	if got := sb.classFor("/api/v1/observe"); got != "critical" {
		t.Fatalf("propagated class %q, want critical", got)
	}

	// The status body surfaces the probed shed rate.
	st := decode[struct {
		Groups []GroupStatus `json:"groups"`
	}](t, gwReq(t, g, http.MethodGet, "/api/v1/cluster/status", nil))
	if len(st.Groups) != 1 || len(st.Groups[0].Replicas) != 1 {
		t.Fatalf("unexpected status shape: %+v", st)
	}
	if got := st.Groups[0].Replicas[0].ShedRate; got != 0.9 {
		t.Fatalf("status shed_rate = %v, want 0.9", got)
	}

	// Recovery: the group calms down, the next probe round clears the
	// saturation, sheddable traffic flows again.
	sb.setShedRate(0.0)
	g.probeAll()
	if w := classedGwReq(t, g, http.MethodGet, "/api/v1/predict?user=u1&service=s1", "sheddable", nil); w.Code != http.StatusOK {
		t.Fatalf("recovered sheddable predict: status %d: %s", w.Code, w.Body.String())
	}
	if got := sb.classFor("/api/v1/predict"); got != "sheddable" {
		t.Fatalf("propagated class %q, want sheddable", got)
	}
}

// TestGatewayEdgeShedDisabled: without the flag, a saturated group does
// not shed anything at the edge — the backend's own gate decides.
func TestGatewayEdgeShedDisabled(t *testing.T) {
	sb := newStubReplica(t, 1.0)
	g := newGateway(t, [][]string{{sb.ts.URL}}, nil)
	w := classedGwReq(t, g, http.MethodGet, "/api/v1/predict?user=u1&service=s1", "sheddable", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (edge shed disabled): %s", w.Code, w.Body.String())
	}
	if got := g.edgeSheds.Value(); got != 0 {
		t.Fatalf("edge shed counter = %d, want 0", got)
	}
}

// TestGatewayEdgeShedBelowThreshold: a reported shed rate under the
// threshold never sheds.
func TestGatewayEdgeShedBelowThreshold(t *testing.T) {
	sb := newStubReplica(t, 0.2)
	g := newGateway(t, [][]string{{sb.ts.URL}}, func(c *Config) {
		c.EdgeShed = true
		c.ShedThreshold = 0.5
	})
	w := classedGwReq(t, g, http.MethodGet, "/api/v1/predict?user=u1&service=s1", "sheddable", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (below threshold): %s", w.Code, w.Body.String())
	}
}

// TestGatewayUnavailableRetryAfter pins the retry contract on the
// gateway's own 503: clients always get a Retry-After hint.
func TestGatewayUnavailableRetryAfter(t *testing.T) {
	sb := newStubReplica(t, 0)
	g := newGateway(t, [][]string{{sb.ts.URL}}, nil)
	rec := httptest.NewRecorder()
	g.unavailable(rec)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", rec.Header().Get("Retry-After"))
	}
}
