package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/server"
)

// TestTunablesDocumented is the tunables-docs lint behind `make
// lint-tunables`: it instantiates a server with the SLO admission gate
// enabled (the full control-plane namespace — engine tunables plus the
// gate's budgets), lists every registered tunable through
// GET /api/v1/config, and fails if any name is missing from README.md's
// tunables table. Adding a tunable without documenting it breaks
// `make ci` — same contract as TestMetricsDocumented for metrics.
func TestTunablesDocumented(t *testing.T) {
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg), server.WithLogger(quietLogger()))
	defer svc.Close()
	svc.EnableAdmission(server.AdmissionConfig{})

	rec := httptest.NewRecorder()
	svc.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/config", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/v1/config: status %d: %s", rec.Code, rec.Body.String())
	}
	var list server.ConfigResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("decode config response: %v", err)
	}
	if len(list.Tunables) == 0 {
		t.Fatal("GET /api/v1/config returned no tunables")
	}

	// Documented names: every tunable-shaped token (dotted lowercase
	// identifier) inside a README table row.
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	nameRE := regexp.MustCompile(`[a-z][a-z0-9_]*\.[a-z][a-z0-9_.]*`)
	documented := map[string]bool{}
	for _, line := range strings.Split(string(readme), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		for _, name := range nameRE.FindAllString(line, -1) {
			documented[name] = true
		}
	}

	var missing []string
	for _, ti := range list.Tunables {
		if !documented[ti.Name] {
			missing = append(missing, ti.Name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("tunables missing from README.md's tunables table (add a row per name):\n  %s",
			strings.Join(missing, "\n  "))
	}
}
