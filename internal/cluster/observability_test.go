package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/store"
)

// replicatedGroup builds one shard group the way production runs it: a
// durable leader plus a WAL-shipping follower. Returns the two base
// URLs (leader first).
func replicatedGroup(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	leader, mgr, _ := durableBackend(t, dir)
	tsLeader := httptest.NewServer(leader.Handler())
	t.Cleanup(func() { mgr.Close() })
	t.Cleanup(leader.Close)
	t.Cleanup(tsLeader.Close)

	folCfg := core.DefaultConfig(-0.007, 0, 20)
	folCfg.Expiry = 0
	follower := server.New(core.MustNew(folCfg), server.WithLogger(quietLogger()))
	tsFollower := httptest.NewServer(follower.Handler())
	t.Cleanup(follower.Close)
	t.Cleanup(tsFollower.Close)
	if _, err := follower.StartFollower(server.FollowerConfig{
		Leader:        tsLeader.URL,
		LeaderData:    dir,
		StoreOptions:  store.Options{Sync: store.SyncAlways, CheckpointInterval: time.Hour, Logger: quietLogger()},
		WaitMS:        100,
		RetryInterval: 20 * time.Millisecond,
	}); err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	return tsLeader.URL, tsFollower.URL
}

// TestClusterMetricsFederation runs a real 2-group x 2-replica cluster
// (durable leaders, WAL-shipping followers) and asserts that one GET
// /api/v1/cluster/metrics scrape sees all of it: every replica's
// families re-labelled with group/replica origin, the gateway's own
// page, and the derived replication-lag gauges — all through the strict
// parser, so the federated page is valid exposition text.
func TestClusterMetricsFederation(t *testing.T) {
	lead0, fol0 := replicatedGroup(t)
	lead1, fol1 := replicatedGroup(t)
	g := newGateway(t, [][]string{{lead0, fol0}, {lead1, fol1}}, nil)

	var observations []server.Observation
	for i := 0; i < 24; i++ {
		observations = append(observations, server.Observation{
			User: fmt.Sprintf("user-%d", i), Service: "svc", Value: 1 + float64(i%5),
		})
	}
	if w := gwReq(t, g, http.MethodPost, "/api/v1/observe",
		server.ObserveRequest{Observations: observations}); w.Code != http.StatusOK {
		t.Fatalf("observe via gateway: HTTP %d %s", w.Code, w.Body.String())
	}

	// Probe rounds discover roles and carry WAL/applied sequences into
	// the gateway's replica state, which the derived gauges read.
	for i := 0; i < 2; i++ {
		g.probeAll()
	}

	w := gwReq(t, g, http.MethodGet, "/api/v1/cluster/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("cluster metrics: HTTP %d %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	tm, err := obs.ParseMetrics(strings.NewReader(w.Body.String()))
	if err != nil {
		t.Fatalf("federated page does not round-trip the strict parser: %v", err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatalf("federated page fails validation: %v", err)
	}

	// Every replica's page landed, re-labelled with its origin.
	for i, url := range []string{lead0, fol0, lead1, fol1} {
		labels := map[string]string{"group": fmt.Sprintf("shard-%d", i/2), "replica": url}
		if _, ok := tm.Value("amf_uptime_seconds", labels); !ok {
			t.Errorf("no amf_uptime_seconds sample for %v", labels)
		}
	}
	// The gateway federates its own registry as just another page.
	if _, ok := tm.Value("amf_cluster_probe_errors_total",
		map[string]string{"group": "gateway", "replica": "gateway"}); !ok {
		t.Error("gateway self page missing from the federated output")
	}
	// amf_build_info merges across pages under one HELP/TYPE: one sample
	// per replica plus the gateway's own.
	if f, ok := tm.Families["amf_build_info"]; !ok {
		t.Error("amf_build_info missing from the federated output")
	} else if len(f.Samples) != 5 {
		t.Errorf("amf_build_info has %d samples, want 5 (4 replicas + gateway)", len(f.Samples))
	}

	// Derived gauges: per-follower replication lag in both units, and
	// epoch/fenced/checkpoint-age for every replica.
	for _, tc := range []struct{ group, replica string }{
		{"shard-0", fol0}, {"shard-1", fol1},
	} {
		labels := map[string]string{"group": tc.group, "replica": tc.replica}
		lag, ok := tm.Value("amf_cluster_replication_lag_seqs", labels)
		if !ok {
			t.Errorf("no amf_cluster_replication_lag_seqs for %v", labels)
		} else if lag < 0 {
			t.Errorf("lag_seqs for %v = %g, want >= 0", labels, lag)
		}
		if _, ok := tm.Value("amf_cluster_replication_lag_seconds", labels); !ok {
			t.Errorf("no amf_cluster_replication_lag_seconds for %v", labels)
		}
	}
	for i, url := range []string{lead0, fol0, lead1, fol1} {
		labels := map[string]string{"group": fmt.Sprintf("shard-%d", i/2), "replica": url}
		if _, ok := tm.Value("amf_cluster_replica_epoch", labels); !ok {
			t.Errorf("no amf_cluster_replica_epoch for %v", labels)
		}
		if _, ok := tm.Value("amf_cluster_replica_fenced", labels); !ok {
			t.Errorf("no amf_cluster_replica_fenced for %v", labels)
		}
		if _, ok := tm.Value("amf_cluster_checkpoint_age_seconds", labels); !ok {
			t.Errorf("no amf_cluster_checkpoint_age_seconds for %v", labels)
		}
	}
	// The durable leaders hold a real directory claim.
	for i, lead := range []string{lead0, lead1} {
		labels := map[string]string{"group": fmt.Sprintf("shard-%d", i), "replica": lead}
		if epoch, _ := tm.Value("amf_cluster_replica_epoch", labels); epoch < 1 {
			t.Errorf("leader %s epoch = %g, want >= 1", lead, epoch)
		}
	}
}

// TestClusterMetricsFederationSurvivesDeadReplica: a scrape failure
// costs that replica's series, never the page.
func TestClusterMetricsFederationSurvivesDeadReplica(t *testing.T) {
	_, tsLive := backend(t)
	tsDead := httptest.NewServer(http.NotFoundHandler())
	tsDead.Close()
	g := newGateway(t, [][]string{{tsLive.URL, tsDead.URL}}, nil)
	g.probeAll()

	w := gwReq(t, g, http.MethodGet, "/api/v1/cluster/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("cluster metrics with a dead replica: HTTP %d %s", w.Code, w.Body.String())
	}
	tm, err := obs.ParseMetrics(strings.NewReader(w.Body.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := tm.Value("amf_uptime_seconds",
		map[string]string{"group": "shard-0", "replica": tsLive.URL}); !ok {
		t.Error("live replica's series missing")
	}
	if _, ok := tm.Value("amf_uptime_seconds",
		map[string]string{"group": "shard-0", "replica": tsDead.URL}); ok {
		t.Error("dead replica somehow produced a page")
	}
	if v := metricValue(t, g, "amf_cluster_scrape_errors_total"); v < 1 {
		t.Errorf("amf_cluster_scrape_errors_total = %g, want >= 1", v)
	}
}

// debugTraces mirrors the GET /debug/traces wire format.
type debugTraces struct {
	Traces []struct {
		Trace string `json:"trace"`
		Spans []struct {
			Span        string             `json:"span"`
			Parent      string             `json:"parent"`
			Name        string             `json:"name"`
			DurationMS  float64            `json:"duration_ms"`
			Err         bool               `json:"err"`
			Annotations map[string]float64 `json:"annotations_ms"`
		} `json:"spans"`
	} `json:"traces"`
}

// fetchTrace GETs url's /debug/traces filtered to one trace ID.
func fetchTrace(t *testing.T, url, id string) debugTraces {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces?trace=" + id)
	if err != nil {
		t.Fatalf("GET /debug/traces: %v", err)
	}
	defer resp.Body.Close()
	var dt debugTraces
	if err := json.NewDecoder(resp.Body).Decode(&dt); err != nil {
		t.Fatalf("decode /debug/traces: %v", err)
	}
	return dt
}

// waitForServerSpan polls a backend's /debug/traces until the trace
// shows up (the server middleware files its span a beat after the
// response flushes) and returns it.
func waitForServerSpan(t *testing.T, url, id string) debugTraces {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		dt := fetchTrace(t, url, id)
		if len(dt.Traces) > 0 {
			return dt
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared at %s/debug/traces", id, url)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTraceFollowsObserveAcrossGatewayAndShard sends one observe through
// the gateway and follows its trace ID to every hop: the gateway mints
// the root span (echoed as X-Request-Id), the raw pass-through stamps
// X-Amf-Trace without touching the body, and the backend adopts the same
// trace and annotates its span with the engine's queue/journal/apply/
// publish timings. Both /debug/traces endpoints can be joined on the ID.
func TestTraceFollowsObserveAcrossGatewayAndShard(t *testing.T) {
	_, ts := backend(t)
	tsGW := httptest.NewServer(newGateway(t, [][]string{{ts.URL}}, nil).Handler())
	t.Cleanup(tsGW.Close)

	body := strings.NewReader(`{"observations":[{"user":"u","service":"s","value":2}]}`)
	resp, err := http.Post(tsGW.URL+"/api/v1/observe", "application/json", body)
	if err != nil {
		t.Fatalf("observe via gateway: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe via gateway: HTTP %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 32 {
		t.Fatalf("X-Request-Id = %q, want a 32-hex trace ID", id)
	}

	// Gateway hop: root span for the route plus a backend child.
	gw := fetchTrace(t, tsGW.URL, id)
	if len(gw.Traces) != 1 {
		t.Fatalf("gateway /debug/traces?trace=%s returned %d traces, want 1", id, len(gw.Traces))
	}
	var rootSpan string
	for _, sp := range gw.Traces[0].Spans {
		if sp.Parent == "" {
			rootSpan = sp.Span
		}
	}
	if rootSpan == "" {
		t.Fatal("gateway trace has no root span")
	}
	childSeen := false
	for _, sp := range gw.Traces[0].Spans {
		if sp.Parent == rootSpan && strings.HasPrefix(sp.Name, "backend ") {
			childSeen = true
		}
	}
	if !childSeen {
		t.Errorf("gateway trace has no backend child span: %+v", gw.Traces[0].Spans)
	}

	// Shard hop: same trace ID, parented under the gateway's root span,
	// carrying the engine timing annotations.
	srv := waitForServerSpan(t, ts.URL, id)
	obsSpan := srv.Traces[0].Spans[0]
	if obsSpan.Parent != rootSpan {
		t.Errorf("server span parent = %q, want gateway root %q", obsSpan.Parent, rootSpan)
	}
	for _, key := range []string{"engine_queue_wait", "engine_journal", "engine_apply", "engine_publish"} {
		if _, ok := obsSpan.Annotations[key]; !ok {
			t.Errorf("server span missing %s annotation (have %v)", key, obsSpan.Annotations)
		}
	}
}

// TestTraceFollowsBucketedObserve: the multi-group observe path splits
// the batch per shard through postJSON — every touched shard must adopt
// the same trace ID.
func TestTraceFollowsBucketedObserve(t *testing.T) {
	_, ts0 := backend(t)
	_, ts1 := backend(t)
	tsGW := httptest.NewServer(newGateway(t, [][]string{{ts0.URL}, {ts1.URL}}, nil).Handler())
	t.Cleanup(tsGW.Close)

	var observations []server.Observation
	for i := 0; i < 24; i++ {
		observations = append(observations, server.Observation{
			User: fmt.Sprintf("user-%d", i), Service: "svc", Value: 1,
		})
	}
	buf, _ := json.Marshal(server.ObserveRequest{Observations: observations})
	resp, err := http.Post(tsGW.URL+"/api/v1/observe", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatalf("observe via gateway: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe via gateway: HTTP %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 32 {
		t.Fatalf("X-Request-Id = %q, want a 32-hex trace ID", id)
	}
	// 24 users split across both shards (the sharding test pins this), so
	// both backends saw a bucket of the same trace.
	for _, ts := range []string{ts0.URL, ts1.URL} {
		srv := waitForServerSpan(t, ts, id)
		if got := srv.Traces[0].Trace; got != id {
			t.Errorf("backend %s recorded trace %s, want %s", ts, got, id)
		}
	}
}
