package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/store"
)

// TestFailoverChildHelper is not a test: it is the leader half of the
// SIGKILL failover test below. Re-invoked via os.Args[0] with
// AMF_FAILOVER_CHILD=1, it runs a durable fsync=always amfserver on a
// real TCP socket until the parent kills it.
func TestFailoverChildHelper(t *testing.T) {
	if os.Getenv("AMF_FAILOVER_CHILD") != "1" {
		t.Skip("failover-test child helper; run via TestClusterFailoverKillLeader")
	}
	mgr, err := store.Open(os.Getenv("AMF_FAILOVER_DIR"), store.Options{
		Sync:               store.SyncAlways,
		CheckpointInterval: time.Hour,
		Logger:             quietLogger(),
	})
	if err != nil {
		fmt.Printf("CHILD_ERR=%v\n", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg), server.WithLogger(quietLogger()))
	if _, err := svc.AttachDurable(mgr); err != nil {
		fmt.Printf("CHILD_ERR=%v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("CHILD_ADDR=%s\n", ln.Addr().String())
	_ = http.Serve(ln, svc.Handler()) // runs until SIGKILL
}

// TestClusterFailoverKillLeader is the issue's acceptance scenario: a
// gateway fronts one shard group of three replicas — a leader child
// process on shared storage with fsync=always and two in-process
// followers tailing its WAL. The leader is SIGKILLed under an active
// observe stream; the gateway's probe loop must promote the most
// caught-up follower (which recovers the leader's durable directory to
// its exact tail), re-point the survivor, and resume serving — with
// every observation the dead leader acked still predictable. Zero acked
// loss is the fsync=always contract; failover must not weaken it.
func TestClusterFailoverKillLeader(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestFailoverChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "AMF_FAILOVER_CHILD=1", "AMF_FAILOVER_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()
	leaderURL := "http://" + waitChildAddr(t, stdout)

	// Two in-process followers over the same shared storage.
	followerURLs := make([]string, 2)
	for i := range followerURLs {
		cfg := core.DefaultConfig(-0.007, 0, 20)
		cfg.Expiry = 0
		fol := server.New(core.MustNew(cfg), server.WithLogger(quietLogger()))
		ts := httptest.NewServer(fol.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { fol.Close() })
		if _, err := fol.StartFollower(server.FollowerConfig{
			Leader:     leaderURL,
			LeaderData: dir,
			StoreOptions: store.Options{
				Sync:               store.SyncAlways,
				CheckpointInterval: time.Hour,
				Logger:             quietLogger(),
			},
			WaitMS:        200,
			RetryInterval: 20 * time.Millisecond,
		}); err != nil {
			t.Fatalf("StartFollower %d: %v", i, err)
		}
		followerURLs[i] = ts.URL
	}

	gw, err := New(Config{
		Groups:        [][]string{{leaderURL, followerURLs[0], followerURLs[1]}},
		ProbeInterval: 50 * time.Millisecond,
		DownAfter:     2,
		Failover:      true,
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(gw.Close)
	gw.Start()
	gwTS := httptest.NewServer(gw.Handler())
	t.Cleanup(gwTS.Close)

	// Stream observations through the gateway; every 200 is an ack the
	// cluster must never lose. Kill the leader mid-stream, keep writing,
	// and require the stream to recover within the failover budget.
	client := &http.Client{Timeout: 5 * time.Second}
	type pair struct{ user, service string }
	var acked []pair
	observe := func(i int) bool {
		u, s := fmt.Sprintf("fu%d", i%7), fmt.Sprintf("fs%d", i%5)
		body := fmt.Sprintf(`{"observations":[{"user":%q,"service":%q,"value":%g}]}`,
			u, s, 0.5+float64(i%4))
		resp, err := client.Post(gwTS.URL+"/api/v1/observe", "application/json", strings.NewReader(body))
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
		acked = append(acked, pair{u, s})
		return true
	}
	for i := 0; i < 30; i++ {
		if !observe(i) {
			t.Fatalf("observe %d failed before the kill", i)
		}
	}

	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill leader: %v", err)
	}
	_, _ = cmd.Process.Wait()

	// Keep the stream running through the outage. Failed writes are not
	// acked, so they carry no durability promise; what matters is that
	// the stream resumes and stays up.
	recoveredAt := -1
	for i := 30; i < 330; i++ {
		if observe(i) && recoveredAt < 0 {
			recoveredAt = i
		}
		time.Sleep(10 * time.Millisecond)
	}
	if recoveredAt < 0 {
		t.Fatal("writes never recovered after leader kill")
	}
	t.Logf("writes recovered after %d failed attempts; %d acked total", recoveredAt-30, len(acked))

	// The gateway must have promoted exactly one follower.
	if v := metricValue(t, gw, "amf_cluster_failovers_total"); v != 1 {
		t.Errorf("amf_cluster_failovers_total = %g, want 1", v)
	}
	promoted := ""
	for _, u := range followerURLs {
		if clusterRole(t, u) == "leader" {
			if promoted != "" {
				t.Fatal("both followers claim leadership")
			}
			promoted = u
		}
	}
	if promoted == "" {
		t.Fatal("no follower was promoted")
	}

	// Zero acked loss: every pair acked — including those acked by the
	// dead leader — is predictable on the promoted leader.
	for _, p := range acked {
		if _, ok := followerHas(t, promoted, p.user, p.service); !ok {
			t.Errorf("acked pair (%s,%s) lost across failover", p.user, p.service)
		}
	}

	// The surviving follower was re-pointed at the promoted leader and
	// keeps replicating from the same WAL lineage.
	survivor := followerURLs[0]
	if survivor == promoted {
		survivor = followerURLs[1]
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if clusterLeader(t, survivor) == promoted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor still points at %q, want %q", clusterLeader(t, survivor), promoted)
		}
		time.Sleep(25 * time.Millisecond)
	}
	last := acked[len(acked)-1]
	for {
		if _, ok := followerHas(t, survivor, last.user, last.service); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivor never replicated the post-failover stream")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitChildAddr scans the child's stdout for its listen address.
func waitChildAddr(t *testing.T, stdout io.Reader) string {
	t.Helper()
	addrCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			line := scanner.Text()
			if a, ok := strings.CutPrefix(line, "CHILD_ADDR="); ok {
				addrCh <- a
				return
			}
			if e, ok := strings.CutPrefix(line, "CHILD_ERR="); ok {
				addrCh <- "ERR:" + e
				return
			}
		}
		addrCh <- "ERR:child exited without address"
	}()
	select {
	case a := <-addrCh:
		if strings.HasPrefix(a, "ERR:") {
			t.Fatalf("child failed: %s", a)
		}
		return a
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for child address")
		return ""
	}
}

func clusterStatus(t *testing.T, url string) server.ClusterStatusResponse {
	t.Helper()
	resp, err := http.Get(url + "/api/v1/cluster/status")
	if err != nil {
		return server.ClusterStatusResponse{}
	}
	defer resp.Body.Close()
	var st server.ClusterStatusResponse
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st
}

func clusterRole(t *testing.T, url string) string   { return clusterStatus(t, url).Role }
func clusterLeader(t *testing.T, url string) string { return clusterStatus(t, url).Leader }
