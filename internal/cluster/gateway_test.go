package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/store"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// backend spins up one in-memory amfserver over httptest.
func backend(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg), server.WithLogger(quietLogger()))
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { svc.Close() })
	return svc, ts
}

// newGateway builds a gateway over the given groups; mod may tweak the
// config before construction. The probe loop is NOT started — tests
// drive probes explicitly with probeAll for determinism.
func newGateway(t *testing.T, groups [][]string, mod func(*Config)) *Gateway {
	t.Helper()
	cfg := Config{Groups: groups, Logger: quietLogger()}
	if mod != nil {
		mod(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(g.Close)
	return g
}

func gwReq(t *testing.T, g *Gateway, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, path, reader)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, req)
	return w
}

func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(w.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v (body %q)", err, w.Body.String())
	}
	return v
}

func TestGatewayShardsUsersAcrossGroups(t *testing.T) {
	_, ts0 := backend(t)
	_, ts1 := backend(t)
	g := newGateway(t, [][]string{{ts0.URL}, {ts1.URL}}, nil)

	const users = 24
	var obs []server.Observation
	for i := 0; i < users; i++ {
		for j := 0; j < 3; j++ {
			obs = append(obs, server.Observation{
				User:    fmt.Sprintf("user-%d", i),
				Service: fmt.Sprintf("svc-%d", j),
				Value:   1 + float64((i+j)%5),
			})
		}
	}
	w := gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{Observations: obs})
	if w.Code != http.StatusOK {
		t.Fatalf("observe via gateway: HTTP %d %s", w.Code, w.Body.String())
	}
	resp := decode[server.ObserveResponse](t, w)
	if resp.Accepted != len(obs) {
		t.Fatalf("accepted %d of %d", resp.Accepted, len(obs))
	}
	if resp.NewUsers != users {
		t.Fatalf("merged NewUsers = %d, want %d", resp.NewUsers, users)
	}

	// Both shards should hold a strict, non-empty subset of the users.
	total := 0
	for _, ts := range []*httptest.Server{ts0, ts1} {
		st := backendStats(t, ts.URL)
		if st.Users == 0 || st.Users == users {
			t.Fatalf("shard %s holds %d users — sharding did not split", ts.URL, st.Users)
		}
		total += st.Users
	}
	if total != users {
		t.Fatalf("shards hold %d users combined, want %d", total, users)
	}

	// Single predictions route to the right shard regardless of user.
	for i := 0; i < users; i++ {
		path := fmt.Sprintf("/api/v1/predict?user=user-%d&service=svc-0", i)
		if w := gwReq(t, g, http.MethodGet, path, nil); w.Code != http.StatusOK {
			t.Fatalf("predict user-%d: HTTP %d %s", i, w.Code, w.Body.String())
		}
	}
	// Unknown user's 404 passes through untouched.
	if w := gwReq(t, g, http.MethodGet, "/api/v1/predict?user=ghost&service=svc-0", nil); w.Code != http.StatusNotFound {
		t.Fatalf("ghost predict: HTTP %d", w.Code)
	}
}

func backendStats(t *testing.T, url string) server.StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGatewayFanOut verifies split/merge of batch predictions and
// rankings. Three "replicas" are three listeners over ONE server, so
// their state is identical by construction — which is exactly the
// contract fan-out relies on (replicas of a group converge via WAL
// shipping).
func TestGatewayFanOut(t *testing.T) {
	svc, ts := backend(t)
	ts2 := httptest.NewServer(svc.Handler())
	t.Cleanup(ts2.Close)
	ts3 := httptest.NewServer(svc.Handler())
	t.Cleanup(ts3.Close)

	g := newGateway(t, [][]string{{ts.URL, ts2.URL, ts3.URL}}, func(c *Config) {
		c.FanOutThreshold = 4 // small candidate sets fan out too
	})

	var obs []server.Observation
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			obs = append(obs, server.Observation{
				User:    fmt.Sprintf("u%d", i),
				Service: fmt.Sprintf("s%d", j),
				Value:   0.5 + float64((i*3+j)%7),
			})
		}
	}
	if w := gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{Observations: obs}); w.Code != http.StatusOK {
		t.Fatalf("seed: HTTP %d %s", w.Code, w.Body.String())
	}

	candidates := []string{"s0", "s1", "s2", "s3", "s4", "ghost", "s6", "s7"}

	// Batch predict: gateway fan-out must match a direct single-server
	// answer exactly, order included.
	breq := server.BatchPredictRequest{User: "u1", Services: candidates}
	direct := postBackend[server.BatchPredictResponse](t, ts.URL+"/api/v1/predict", breq)
	viaGW := decode[server.BatchPredictResponse](t, gwReq(t, g, http.MethodPost, "/api/v1/predict", breq))
	if len(viaGW.Predictions) != len(direct.Predictions) {
		t.Fatalf("fan-out returned %d predictions, direct %d", len(viaGW.Predictions), len(direct.Predictions))
	}
	for i := range direct.Predictions {
		d, gw := direct.Predictions[i], viaGW.Predictions[i]
		if d.Service != gw.Service || d.OK != gw.OK || d.Value != gw.Value {
			t.Fatalf("prediction %d differs: direct %+v gateway %+v", i, d, gw)
		}
	}

	// Rank: merged top-k must equal the direct top-k.
	rreq := server.RankRequest{User: "u1", Services: candidates, TopK: 3}
	directRank := postBackend[server.RankResponse](t, ts.URL+"/api/v1/rank", rreq)
	gwRank := decode[server.RankResponse](t, gwReq(t, g, http.MethodPost, "/api/v1/rank", rreq))
	if len(gwRank.Ranked) != 3 || len(directRank.Ranked) != 3 {
		t.Fatalf("rank sizes: gateway %d direct %d", len(gwRank.Ranked), len(directRank.Ranked))
	}
	for i := range directRank.Ranked {
		if directRank.Ranked[i] != gwRank.Ranked[i] {
			t.Fatalf("rank %d differs: direct %+v gateway %+v", i, directRank.Ranked[i], gwRank.Ranked[i])
		}
	}
	if gwRank.Candidates != directRank.Candidates || len(gwRank.Unknown) != 1 || gwRank.Unknown[0] != "ghost" {
		t.Fatalf("merged rank metadata: %+v", gwRank)
	}

	// Throughput metric merges descending.
	tpReq := server.RankRequest{User: "u1", Services: candidates, TopK: 4, Metric: "tp"}
	tpRank := decode[server.RankResponse](t, gwReq(t, g, http.MethodPost, "/api/v1/rank", tpReq))
	for i := 1; i < len(tpRank.Ranked); i++ {
		if tpRank.Ranked[i].Value > tpRank.Ranked[i-1].Value {
			t.Fatalf("tp merge not descending: %+v", tpRank.Ranked)
		}
	}

	// The fan-out counter moved (three fanned-out requests above).
	if v := metricValue(t, g, "amf_cluster_fanouts_total"); v < 3 {
		t.Errorf("amf_cluster_fanouts_total = %g, want >= 3", v)
	}
}

func postBackend[T any](t *testing.T, url string, body any) T {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: HTTP %d %s", url, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func metricValue(t *testing.T, g *Gateway, name string) float64 {
	t.Helper()
	w := gwReq(t, g, http.MethodGet, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", w.Code)
	}
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			var v float64
			fields := strings.Fields(line)
			if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
				return v
			}
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, w.Body.String())
	return 0
}

func TestGatewayHealthAndStatus(t *testing.T) {
	_, ts0 := backend(t)
	_, ts1 := backend(t)
	g := newGateway(t, [][]string{{ts0.URL}, {ts1.URL}}, nil)

	if w := gwReq(t, g, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", w.Code)
	}
	w := gwReq(t, g, http.MethodGet, "/api/v1/cluster/status", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/api/v1/cluster/status: HTTP %d", w.Code)
	}
	var st struct {
		Groups []GroupStatus `json:"groups"`
		VNodes int           `json:"vnodes"`
	}
	if err := json.NewDecoder(w.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Groups) != 2 || st.VNodes != 128 {
		t.Fatalf("status = %+v", st)
	}
	for _, grp := range st.Groups {
		if grp.Leader == "" {
			t.Errorf("group %s has no probed leader", grp.Name)
		}
		if len(grp.Replicas) != 1 || grp.Replicas[0].Health != "healthy" {
			t.Errorf("group %s replicas = %+v", grp.Name, grp.Replicas)
		}
	}

	// Kill one shard: /healthz degrades after the down threshold.
	ts1.Close()
	for i := 0; i < 3; i++ {
		g.probeAll()
	}
	if w := gwReq(t, g, http.MethodGet, "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with a dead shard: HTTP %d", w.Code)
	}
}

func TestGatewayReadsAvoidDownReplica(t *testing.T) {
	svc, ts := backend(t)
	tsDead := httptest.NewServer(svc.Handler())
	g := newGateway(t, [][]string{{ts.URL, tsDead.URL}}, nil)

	if w := gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{
		Observations: []server.Observation{{User: "u", Service: "s", Value: 1}},
	}); w.Code != http.StatusOK {
		t.Fatalf("seed: HTTP %d %s", w.Code, w.Body.String())
	}

	tsDead.Close()
	for i := 0; i < 3; i++ {
		g.probeAll()
	}
	// Every read must now land on the surviving replica: the round-robin
	// cursor alternates, so 6 straight successes prove the skip works.
	for i := 0; i < 6; i++ {
		if w := gwReq(t, g, http.MethodGet, "/api/v1/predict?user=u&service=s", nil); w.Code != http.StatusOK {
			t.Fatalf("predict %d with a down replica: HTTP %d %s", i, w.Code, w.Body.String())
		}
	}
}

// TestGatewayAutoFailover runs a real leader+follower pair under the
// gateway, kills the leader, and expects the probe loop to promote the
// follower (shared-storage recovery) and resume serving writes.
func TestGatewayAutoFailover(t *testing.T) {
	dir := t.TempDir()
	leader, mgr, _ := durableBackend(t, dir)
	tsLeader := httptest.NewServer(leader.Handler())

	folCfg := core.DefaultConfig(-0.007, 0, 20)
	folCfg.Expiry = 0
	follower := server.New(core.MustNew(folCfg), server.WithLogger(quietLogger()))
	tsFollower := httptest.NewServer(follower.Handler())
	t.Cleanup(tsFollower.Close)
	t.Cleanup(func() { follower.Close() })
	if _, err := follower.StartFollower(server.FollowerConfig{
		Leader:        tsLeader.URL,
		LeaderData:    dir,
		StoreOptions:  store.Options{Sync: store.SyncAlways, CheckpointInterval: time.Hour, Logger: quietLogger()},
		WaitMS:        100,
		RetryInterval: 20 * time.Millisecond,
	}); err != nil {
		t.Fatalf("StartFollower: %v", err)
	}

	g := newGateway(t, [][]string{{tsLeader.URL, tsFollower.URL}}, func(c *Config) {
		c.Failover = true
		c.DownAfter = 2
	})

	if w := gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{
		Observations: []server.Observation{{User: "u", Service: "s", Value: 2}},
	}); w.Code != http.StatusOK {
		t.Fatalf("seed via gateway: HTTP %d %s", w.Code, w.Body.String())
	}

	// Wait for the follower to catch up, then kill the leader hard.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := followerHas(t, tsFollower.URL, "u", "s"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never replicated the seed sample")
		}
		time.Sleep(10 * time.Millisecond)
	}
	tsLeader.Close()
	leader.Close()
	mgr.Close()

	// Probe rounds: round 1-2 mark the leader down; once it has been
	// leaderless DownAfter rounds the gateway promotes the follower.
	for i := 0; i < 6; i++ {
		g.probeAll()
	}

	// Writes flow again, through the promoted follower.
	ok := false
	for i := 0; i < 50; i++ {
		w := gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{
			Observations: []server.Observation{{User: "u", Service: "s", Value: 2.5}},
		})
		if w.Code == http.StatusOK {
			ok = true
			break
		}
		g.probeAll()
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatal("writes never recovered after failover")
	}
	if v := metricValue(t, g, "amf_cluster_failovers_total"); v != 1 {
		t.Errorf("amf_cluster_failovers_total = %g, want 1", v)
	}
	// The seeded sample survived promotion (shared-storage recovery).
	if _, ok := followerHas(t, tsFollower.URL, "u", "s"); !ok {
		t.Fatal("promoted leader lost the seeded pair")
	}
}

func durableBackend(t *testing.T, dir string) (*server.Server, *store.Manager, store.RecoveryStats) {
	t.Helper()
	mgr, err := store.Open(dir, store.Options{
		Sync:               store.SyncAlways,
		CheckpointInterval: time.Hour,
		Logger:             quietLogger(),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg), server.WithLogger(quietLogger()))
	rs, err := svc.AttachDurable(mgr)
	if err != nil {
		t.Fatalf("AttachDurable: %v", err)
	}
	return svc, mgr, rs
}

func followerHas(t *testing.T, url, user, service string) (float64, bool) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/predict?user=%s&service=%s", url, user, service))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false
	}
	var pr server.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, false
	}
	return pr.Value, true
}

// TestUserFromJSONDuplicateKeys pins the routing scan to encoding/json
// semantics: the LAST duplicate "user" key wins, because that is the
// user the backend (and the gateway's own fan-out path) will decode and
// serve.
func TestUserFromJSONDuplicateKeys(t *testing.T) {
	cases := []struct {
		raw  string
		want string
		ok   bool
	}{
		{`{"user":"a","services":["x","y"]}`, "a", true},
		{`{"services":["x"],"user":"late"}`, "late", true},
		{`{"user":"a","user":"b"}`, "b", true},
		{`{"user":"a","nested":{"user":"inner"},"user":"c","tail":[1,2]}`, "c", true},
		{`{"user":5}`, "", false},
		{`{"user":"a","user":5}`, "", false},
		{`{"services":["x"]}`, "", false},
		{`["user","a"]`, "", false},
	}
	for _, tc := range cases {
		got, ok := userFromJSON([]byte(tc.raw))
		if got != tc.want || ok != tc.ok {
			t.Errorf("userFromJSON(%s) = (%q, %v), want (%q, %v)", tc.raw, got, ok, tc.want, tc.ok)
		}
		// Whenever the scan routes, it must agree with a full decode.
		if ok {
			var req server.BatchPredictRequest
			if err := json.Unmarshal([]byte(tc.raw), &req); err == nil && req.User != got {
				t.Errorf("scan routes %s by %q but encoding/json decodes user %q", tc.raw, got, req.User)
			}
		}
	}
}

// TestGatewayObservePartialFailure: once any bucket of a sharded batch
// has been applied, the gateway must NOT relay a retryable status — a
// client resending the whole batch would re-train the groups that
// already accepted their buckets. Total failure still relays the
// backend status (nothing applied, retry is safe).
func TestGatewayObservePartialFailure(t *testing.T) {
	_, tsOK := backend(t)
	svcBad, tsBad := backend(t)
	svcBad.Demote("") // every write on this shard now 503s
	g := newGateway(t, [][]string{{tsOK.URL}, {tsBad.URL}}, nil)

	// Find one user routed to each shard.
	var uOK, uBad string
	for i := 0; uOK == "" || uBad == ""; i++ {
		u := fmt.Sprintf("user-%d", i)
		if g.groupFor(u).name == "shard-0" {
			if uOK == "" {
				uOK = u
			}
		} else if uBad == "" {
			uBad = u
		}
	}

	w := gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{Observations: []server.Observation{
		{User: uOK, Service: "s", Value: 1},
		{User: uBad, Service: "s", Value: 1},
	}})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("partial observe: HTTP %d, want 500 (non-retryable), body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "partially applied") {
		t.Errorf("partial observe body lacks explanation: %s", w.Body.String())
	}

	// All buckets failing is a clean failure: the 503 passes through and
	// the client may retry the whole batch.
	w = gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{Observations: []server.Observation{
		{User: uBad, Service: "s", Value: 1},
	}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("total observe failure: HTTP %d, want 503", w.Code)
	}
}

// TestGatewayDemotesStaleLeader: two healthy replicas of one group both
// claim leadership (an ex-leader recovered after a failover). The claim
// epoch identifies the stale one, and the gateway actively demotes it
// instead of letting writeTarget flip-flop between diverged lineages.
func TestGatewayDemotesStaleLeader(t *testing.T) {
	// Stale ex-leader: first claim of its directory, epoch 1.
	svcStale, mgrStale, _ := durableBackend(t, t.TempDir())
	tsStale := httptest.NewServer(svcStale.Handler())
	t.Cleanup(tsStale.Close)
	t.Cleanup(func() { svcStale.Close(); mgrStale.Close() })

	// Failover winner: its directory has been claimed twice (the dead
	// leader's Open, then the promotion's), so it probes at epoch 2.
	dirNew := t.TempDir()
	pre, err := store.Open(dirNew, store.Options{CheckpointInterval: time.Hour, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	pre.Close()
	svcNew, mgrNew, _ := durableBackend(t, dirNew)
	tsNew := httptest.NewServer(svcNew.Handler())
	t.Cleanup(tsNew.Close)
	t.Cleanup(func() { svcNew.Close(); mgrNew.Close() })

	// New's seeding probe round sees both claiming leader and settles the
	// split brain immediately.
	g := newGateway(t, [][]string{{tsStale.URL, tsNew.URL}}, func(c *Config) {
		c.Failover = true
		c.DownAfter = 2
	})

	if v := metricValue(t, g, "amf_cluster_demotions_total"); v != 1 {
		t.Fatalf("amf_cluster_demotions_total = %g, want 1", v)
	}
	lead := g.groups[0].leader.Load()
	if lead == nil || lead.url != tsNew.URL {
		t.Fatalf("leader pointer = %+v, want the higher-epoch claimant %s", lead, tsNew.URL)
	}
	if !mgrStale.Fenced() {
		t.Error("stale leader's store was not fenced by the demotion")
	}
	// The stale replica now rejects writes and points at the winner.
	resp, err := http.Post(tsStale.URL+"/api/v1/observe", "application/json",
		strings.NewReader(`{"observations":[{"user":"u","service":"s","value":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write on demoted stale leader: HTTP %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Amf-Leader"); got != tsNew.URL {
		t.Errorf("X-Amf-Leader = %q, want %q", got, tsNew.URL)
	}
	// Writes through the gateway land on the winner.
	w := gwReq(t, g, http.MethodPost, "/api/v1/observe", server.ObserveRequest{
		Observations: []server.Observation{{User: "u", Service: "s", Value: 1}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("gateway write after demotion: HTTP %d %s", w.Code, w.Body.String())
	}
	// A later probe round is stable: no second demotion, same leader.
	g.probeAll()
	if v := metricValue(t, g, "amf_cluster_demotions_total"); v != 1 {
		t.Errorf("demotions after settle = %g, want still 1", v)
	}

	// Kill the winner: the group is leaderless, but the fenced ex-leader
	// must NOT be promoted — doing so would re-claim the durable
	// directory over the (possibly partitioned, still legitimate)
	// owner's head, epoch after epoch. The group stays degraded instead.
	tsNew.Close()
	svcNew.Close()
	mgrNew.Close()
	for i := 0; i < 6; i++ {
		g.probeAll()
	}
	if v := metricValue(t, g, "amf_cluster_failovers_total"); v != 0 {
		t.Errorf("amf_cluster_failovers_total = %g, want 0 (fenced replica promoted)", v)
	}
	if !mgrStale.Fenced() {
		t.Error("stale replica's store unfenced after failover rounds")
	}
}

func TestGatewayRejectsBadRequests(t *testing.T) {
	_, ts := backend(t)
	g := newGateway(t, [][]string{{ts.URL}}, nil)

	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodPost, "/api/v1/observe", map[string]string{"bad": "x"}, http.StatusBadRequest},
		{http.MethodPost, "/api/v1/observe", server.ObserveRequest{}, http.StatusBadRequest},
		{http.MethodGet, "/api/v1/predict?service=s", nil, http.StatusBadRequest},
		{http.MethodPost, "/api/v1/predict", server.BatchPredictRequest{}, http.StatusBadRequest},
		{http.MethodPost, "/api/v1/rank", server.RankRequest{}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := gwReq(t, g, tc.method, tc.path, tc.body); w.Code != tc.want {
			t.Errorf("%s %s: HTTP %d, want %d (%s)", tc.method, tc.path, w.Code, tc.want, w.Body.String())
		}
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no groups should be rejected")
	}
	if _, err := New(Config{Groups: [][]string{{}}}); err == nil {
		t.Error("empty group should be rejected")
	}
}

func TestSplitStrings(t *testing.T) {
	ss := []string{"a", "b", "c", "d", "e"}
	chunks := splitStrings(ss, 2)
	if len(chunks) != 2 || len(chunks[0])+len(chunks[1]) != 5 {
		t.Fatalf("chunks = %v", chunks)
	}
	// More chunks than items: one item each, no empties.
	chunks = splitStrings(ss[:2], 5)
	if len(chunks) != 2 || len(chunks[0]) != 1 || len(chunks[1]) != 1 {
		t.Fatalf("over-split chunks = %v", chunks)
	}
	// Order is preserved across the concatenation.
	var flat []string
	for _, c := range splitStrings(ss, 3) {
		flat = append(flat, c...)
	}
	for i, s := range flat {
		if s != ss[i] {
			t.Fatalf("order broken: %v", flat)
		}
	}
}

func TestMergeRanked(t *testing.T) {
	parts := []server.RankedService{
		{Service: "b", Value: 2}, {Service: "a", Value: 1}, {Service: "c", Value: 3},
		{Service: "d", Value: 1}, // ties with a; name breaks the tie
	}
	got := mergeRanked(append([]server.RankedService(nil), parts...), 3, true)
	if len(got) != 3 || got[0].Service != "a" || got[1].Service != "d" || got[2].Service != "b" {
		t.Fatalf("rt merge = %+v", got)
	}
	got = mergeRanked(append([]server.RankedService(nil), parts...), 0, false)
	if len(got) != 4 || got[0].Service != "c" {
		t.Fatalf("tp merge = %+v", got)
	}
}
