package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/obs/trace"
	"github.com/qoslab/amf/internal/server"
)

// Config tunes a Gateway.
type Config struct {
	// Groups lists the shard groups: each inner slice is the replica
	// base URLs of one group (leader + followers over one WAL lineage).
	// Users are consistent-hashed across groups; within a group, writes
	// go to the leader and reads spread across replicas.
	Groups [][]string
	// VNodes is the ring's virtual-node count per group (default 128).
	VNodes int
	// ProbeInterval is the health-probe cadence (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default min(interval, 1s)).
	ProbeTimeout time.Duration
	// Failover enables automatic leader promotion: when a group's leader
	// stays unreachable for DownAfter consecutive probe rounds, the
	// reachable follower with the highest applied sequence is promoted
	// and the survivors re-pointed at it.
	Failover bool
	// DownAfter is how many consecutive probe failures mark a replica
	// Down (default 3; the first failure marks it Suspect).
	DownAfter int
	// FanOutThreshold is the candidate-set size at or above which rank
	// and batch-predict requests are split across a group's healthy
	// replicas instead of sent to one (default 256). Every replica holds
	// the full group state, so splitting scales scan work with replica
	// count. <= -1 disables fan-out.
	FanOutThreshold int
	// MaxBody bounds proxied request bodies (default 64 MiB).
	MaxBody int64
	// EdgeShed enables edge shedding: sheddable-class requests aimed at
	// a shard group whose probed shed rate is at or above ShedThreshold
	// are refused at the gateway (429 + Retry-After) without a backend
	// round trip. Standard and critical traffic always passes through.
	EdgeShed bool
	// ShedThreshold is the group shed rate (max over healthy replicas,
	// from the probe loop) at which edge shedding kicks in (default 0.5).
	ShedThreshold float64
	// Logger receives lifecycle and failover events (default slog.Default()).
	Logger *slog.Logger
	// HTTP is the client for proxying and probing; nil builds one with a
	// connection pool sized for proxy fan-out.
	HTTP *http.Client
}

// replica is one amfserver the gateway proxies to.
type replica struct {
	url        string
	fails      atomic.Int32 // consecutive probe failures
	health     atomic.Int32 // Health
	role       atomic.Int32 // 1 = leader (as of the last probe)
	appliedSeq atomic.Uint64
	walSeq     atomic.Uint64
	epoch      atomic.Uint64 // durable directory claim epoch (0 = non-durable)
	fenced     atomic.Bool   // lost its directory claim; never promotable
	lagSecs    atomic.Uint64 // follower time-lag, Float64bits (federation gauge)
	shedRate   atomic.Uint64 // last-probed shed/rejection rate, Float64bits
}

func (rep *replica) Health() Health { return Health(rep.health.Load()) }

// group is one user shard: a set of replicas over one WAL lineage.
type group struct {
	name     string
	member   *Member // ring presence; health mirrors the group's best replica
	replicas []*replica
	leader   atomic.Pointer[replica]
	rr       atomic.Uint64 // read round-robin cursor
	noLeader int           // consecutive probe rounds without a reachable leader
}

// Gateway routes the prediction API across a user-sharded cluster. It
// is an http.Handler; construct with New, serve, Close on shutdown.
type Gateway struct {
	cfg    Config
	ring   *Ring
	groups []*group
	byName map[string]*group
	mux    *http.ServeMux
	http   *http.Client
	log    *slog.Logger

	reg          *obs.Registry
	requests     *obs.CounterVec
	proxySeconds *obs.HistogramVec
	proxyErrors  *obs.Counter
	fanouts      *obs.Counter
	edgeSheds    *obs.Counter
	failovers    *obs.Counter
	demotions    *obs.Counter
	probeErrors  *obs.Counter
	probeLatency *obs.Histogram
	scrapeErrors *obs.Counter

	// traces records the gateway's half of every proxied request: the
	// root span minted in timed() plus one child per backend round trip.
	traces *trace.Recorder

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a gateway over the configured shard groups and runs one
// synchronous probe round so routing starts with live leader/health
// knowledge. Call Start to launch the background probe loop.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Groups) == 0 {
		return nil, errors.New("cluster: no shard groups configured")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = min(cfg.ProbeInterval, time.Second)
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 3
	}
	if cfg.FanOutThreshold == 0 {
		cfg.FanOutThreshold = 256
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.ShedThreshold <= 0 {
		cfg.ShedThreshold = 0.5
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	g := &Gateway{
		cfg:    cfg,
		ring:   NewRing(cfg.VNodes),
		byName: make(map[string]*group),
		http:   cfg.HTTP,
		log:    cfg.Logger,
		traces: trace.NewRecorder(trace.Config{}),
		stop:   make(chan struct{}),
	}
	if g.http == nil {
		// The default transport keeps only 2 idle conns per host — a
		// proxy fanning every request through the same few backends
		// would reconnect constantly. Compression is pointless on the
		// backend leg (same-datacenter hops, and gzip would burn far
		// more than it saves at this latency floor).
		g.http = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			DisableCompression:  true,
		}}
	}
	for i, urls := range cfg.Groups {
		if len(urls) == 0 {
			return nil, fmt.Errorf("cluster: shard group %d has no replicas", i)
		}
		grp := &group{name: fmt.Sprintf("shard-%d", i)}
		for _, u := range urls {
			grp.replicas = append(grp.replicas, &replica{url: strings.TrimRight(u, "/")})
		}
		grp.member = g.ring.Add(grp.name)
		g.groups = append(g.groups, grp)
		g.byName[grp.name] = grp
	}
	g.buildMetrics()
	g.routes()
	g.probeAll() // seed health + leadership before the first request
	return g, nil
}

// Start launches the background probe (and failover) loop.
func (g *Gateway) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		ticker := time.NewTicker(g.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-ticker.C:
				g.probeAll()
			}
		}
	}()
}

// Close stops the probe loop.
func (g *Gateway) Close() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.wg.Wait()
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Ring exposes the routing ring (tests, status).
func (g *Gateway) Ring() *Ring { return g.ring }

// Registry exposes the gateway's metric registry (embedders, federation).
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// Traces exposes the span recorder behind GET /debug/traces.
func (g *Gateway) Traces() *trace.Recorder { return g.traces }

func (g *Gateway) buildMetrics() {
	r := obs.NewRegistry()
	g.reg = r
	obs.RegisterBuildInfo(r)
	g.requests = r.NewCounterVec("amf_cluster_requests_total",
		"Requests routed through the gateway, by route.", "route")
	g.proxySeconds = r.NewHistogramVec("amf_cluster_proxy_seconds",
		"End-to-end gateway latency (routing + backend round trips), by route.", "route", 1e-6, 60, 8)
	for _, route := range []string{"observe", "predict", "batch", "rank"} {
		g.requests.With(route)
		g.proxySeconds.With(route)
	}
	g.proxyErrors = r.NewCounter("amf_cluster_proxy_errors_total",
		"Backend requests that failed (connection errors or non-2xx).")
	g.fanouts = r.NewCounter("amf_cluster_fanouts_total",
		"Rank/batch requests split across a group's replicas.")
	g.edgeSheds = r.NewCounter("amf_admission_edge_shed_total",
		"Sheddable-class requests refused at the gateway because the target shard group reported saturation.")
	g.failovers = r.NewCounter("amf_cluster_failovers_total",
		"Leader promotions driven by the gateway.")
	g.demotions = r.NewCounter("amf_cluster_demotions_total",
		"Stale leaders demoted by the gateway (ex-leaders that recovered after a failover).")
	g.probeErrors = r.NewCounter("amf_cluster_probe_errors_total",
		"Health probes that failed.")
	g.probeLatency = obs.NewHistogram(1e-6, 60, 8)
	r.RegisterHistogram("amf_cluster_probe_latency_seconds",
		"Health-probe round-trip latency (tunes failover sensitivity: DownAfter x ProbeInterval should clear the tail).",
		g.probeLatency)
	g.scrapeErrors = r.NewCounter("amf_cluster_scrape_errors_total",
		"Replica /metrics scrapes that failed during federation.")
	r.GaugeFunc("amf_cluster_groups", "Configured shard groups.",
		func() float64 { return float64(len(g.groups)) })
	r.GaugeFunc("amf_cluster_replicas", "Configured replicas across all groups.",
		func() float64 {
			n := 0
			for _, grp := range g.groups {
				n += len(grp.replicas)
			}
			return float64(n)
		})
	r.GaugeFunc("amf_cluster_replicas_down", "Replicas currently marked down.",
		func() float64 {
			n := 0
			for _, grp := range g.groups {
				for _, rep := range grp.replicas {
					if rep.Health() == Down {
						n++
					}
				}
			}
			return float64(n)
		})
}

func (g *Gateway) routes() {
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /healthz", g.handleHealth)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /api/v1/cluster/status", g.handleStatus)
	g.mux.HandleFunc("GET /api/v1/cluster/metrics", g.handleClusterMetrics)
	g.mux.Handle("GET /debug/traces", g.traces)
	g.mux.HandleFunc("POST /api/v1/observe", g.timed("observe", g.handleObserve))
	g.mux.HandleFunc("GET /api/v1/predict", g.timed("predict", g.handlePredict))
	g.mux.HandleFunc("POST /api/v1/predict", g.timed("batch", g.handleBatchPredict))
	g.mux.HandleFunc("POST /api/v1/rank", g.timed("rank", g.handleRank))
}

// requestIDHeader mirrors the server's spelling (canonical MIME form, so
// direct header-map assignment skips canonicalization).
const requestIDHeader = "X-Request-Id"

// timed wraps a proxied route with the gateway's per-route metrics and
// mints the root span of a new trace: every proxied request gets a fresh
// 128-bit trace ID, echoed to the client as X-Request-Id and propagated
// to backends via X-Amf-Trace (see stampTrace), so one identifier names
// the request at the client, the gateway, and every shard it touched.
func (g *Gateway) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	counter := g.requests.With(route)
	hist := g.proxySeconds.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		counter.Inc()
		sp := g.traces.Start(trace.NewID(), 0, route)
		w.Header()[requestIDHeader] = []string{sp.Trace.String()}
		r = r.WithContext(trace.NewContext(r.Context(), sp))
		r = classify(r) // SLO class rides the context to every proxy leg
		h(w, r)
		d := time.Since(start)
		hist.Observe(d.Seconds())
		sp.Finish(d)
	}
}

// stampTrace propagates the context's span onto an outgoing backend
// request — the backend adopts the trace ID and records its own spans
// under it. A header-map assignment and nothing else, so the raw
// pass-through path stays raw. No-op for untraced contexts (probes,
// failover control calls).
func stampTrace(req *http.Request, sp *trace.Span) {
	if sp != nil {
		req.Header[trace.Header] = []string{trace.HeaderValue(sp.Trace, sp.ID)}
	}
}

func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	g.writeJSON(w, status, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// groupFor routes a user key through the ring.
func (g *Gateway) groupFor(user string) *group {
	m := g.ring.Lookup(user)
	if m == nil {
		return nil
	}
	return g.byName[m.Name()]
}

// writeTarget returns where a group's writes go: the probed leader, or
// any replica claiming leadership, or the first replica (whose 503 will
// tell the client to retry — by then a probe round has usually caught
// up).
func (grp *group) writeTarget() *replica {
	if lead := grp.leader.Load(); lead != nil && lead.Health() != Down {
		return lead
	}
	for _, rep := range grp.replicas {
		if rep.role.Load() == 1 && rep.Health() != Down {
			return rep
		}
	}
	return grp.replicas[0]
}

// readTarget returns the next read replica: round-robin across replicas
// that are not Down (followers and leader alike — every replica holds
// the full group state).
func (grp *group) readTarget() *replica {
	n := len(grp.replicas)
	start := int(grp.rr.Add(1))
	for i := 0; i < n; i++ {
		rep := grp.replicas[(start+i)%n]
		if rep.Health() != Down {
			return rep
		}
	}
	return grp.replicas[start%n]
}

// healthyReplicas returns the group's non-Down replicas (fan-out set).
func (grp *group) healthyReplicas() []*replica {
	out := make([]*replica, 0, len(grp.replicas))
	for _, rep := range grp.replicas {
		if rep.Health() != Down {
			out = append(out, rep)
		}
	}
	return out
}

// proxyBufPool recycles the request-marshal and response-read buffers
// under postJSON. The predict proxy path runs one of each per
// sub-request; pooling them (plus Unmarshal over a pooled read instead
// of a fresh json.Decoder) is what pulled the direct→gateway allocation
// overhead down — see BENCH_cluster.json.
var proxyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// postJSON sends one JSON sub-request and decodes the 200 response into
// out. Non-200 answers surface as errors carrying the backend's message.
func (g *Gateway) postJSON(ctx context.Context, url string, body, out any) error {
	buf := proxyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer proxyBufPool.Put(buf)
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		return fmt.Errorf("cluster: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	sp := trace.FromContext(ctx)
	stampTrace(req, sp)
	stampClass(req, control.FromContext(ctx))
	child := g.traces.StartChild(sp, "backend "+req.URL.Host)
	resp, err := g.http.Do(req)
	if err != nil {
		child.SetError()
		child.FinishNow()
		g.proxyErrors.Inc()
		return err
	}
	if resp.StatusCode != http.StatusOK {
		child.SetError()
	}
	child.FinishNow()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.proxyErrors.Inc()
		var apiErr server.ErrorResponse
		msg := resp.Status
		if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &backendError{status: resp.StatusCode, msg: msg}
	}
	if out == nil {
		// Drain so the keep-alive connection goes back to the pool.
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	rbuf := proxyBufPool.Get().(*bytes.Buffer)
	rbuf.Reset()
	defer proxyBufPool.Put(rbuf)
	if _, err := rbuf.ReadFrom(resp.Body); err != nil {
		g.proxyErrors.Inc()
		return fmt.Errorf("cluster: read response: %w", err)
	}
	return json.Unmarshal(rbuf.Bytes(), out)
}

// forwardRaw proxies a request body verbatim to one backend and streams
// the response straight through — the fast path for requests that need
// no splitting or merging. Skipping the gateway-side decode/re-encode of
// both body and response is what keeps the proxy hop within the issue's
// 15% overhead budget on large ranking queries.
func (g *Gateway) forwardRaw(w http.ResponseWriter, r *http.Request, url string, body []byte) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// Tracing and class propagation on the raw path touch headers only:
	// the body and response still stream through untouched.
	sp := trace.FromContext(r.Context())
	stampTrace(req, sp)
	stampClass(req, control.FromContext(r.Context()))
	child := g.traces.StartChild(sp, "backend "+req.URL.Host)
	resp, err := g.http.Do(req)
	if err != nil {
		child.SetError()
		child.FinishNow()
		g.proxyErrors.Inc()
		g.writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		child.SetError()
		g.proxyErrors.Inc()
	}
	child.FinishNow()
	copyResponse(w, resp)
}

// copyResponse relays a backend response verbatim. Propagating
// Content-Length keeps the client leg un-chunked (one frame instead of
// chunk headers), which matters at the proxy's latency floor.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	if resp.ContentLength >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(resp.ContentLength, 10))
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// userFromJSON extracts the top-level "user" field from a request body
// without materializing the rest (candidate lists run to thousands of
// strings). The scan runs to the end of the top-level object on
// purpose: encoding/json keeps the LAST duplicate key, and both the
// backend and the gateway's own fan-out path decode the body with
// encoding/json — stopping at the first "user" would route by a
// different user than the one the request is served for, silently
// crossing shard groups. A non-string "user" value returns ok=false;
// the callers then fall through to a full decode for a precise 400.
func userFromJSON(raw []byte) (string, bool) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	t, err := dec.Token()
	if err != nil || t != json.Delim('{') {
		return "", false
	}
	var user string
	found := false
	for dec.More() {
		key, err := dec.Token()
		if err != nil {
			return "", false
		}
		val, err := dec.Token()
		if err != nil {
			return "", false
		}
		if key == "user" {
			s, ok := val.(string)
			if !ok {
				return "", false
			}
			user, found = s, true
			continue
		}
		if err := finishValue(dec, val); err != nil {
			return "", false
		}
	}
	return user, found
}

// finishValue consumes the remainder of one JSON value whose first
// token is t: scalars are already complete, containers are drained to
// their closing delimiter.
func finishValue(dec *json.Decoder, t json.Token) error {
	d, ok := t.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	depth := 1
	for depth > 0 {
		t, err := dec.Token()
		if err != nil {
			return err
		}
		if dd, ok := t.(json.Delim); ok {
			switch dd {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}

// backendError carries a backend's HTTP status through the merge so the
// gateway can relay it instead of flattening everything to 502.
type backendError struct {
	status int
	msg    string
}

func (e *backendError) Error() string { return fmt.Sprintf("%s (HTTP %d)", e.msg, e.status) }

// relayStatus picks the gateway's response status for a failed backend
// call: backend HTTP statuses pass through (404 unknown user stays 404,
// 503 follower/drain stays 503 so clients retry), transport errors
// become 502.
func relayStatus(err error) int {
	var be *backendError
	if errors.As(err, &be) {
		return be.status
	}
	return http.StatusBadGateway
}

func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	for _, grp := range g.groups {
		if len(grp.healthyReplicas()) == 0 {
			g.writeJSON(w, http.StatusServiceUnavailable,
				map[string]string{"status": "degraded", "group": grp.name})
			return
		}
	}
	g.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.reg.WritePrometheus(w)
}

// GroupStatus describes one shard group in the gateway's status body.
type GroupStatus struct {
	Name     string          `json:"name"`
	Leader   string          `json:"leader,omitempty"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ReplicaStatus describes one replica as of the last probe.
type ReplicaStatus struct {
	URL        string `json:"url"`
	Health     string `json:"health"`
	Role       string `json:"role"`
	WALSeq     uint64 `json:"wal_seq,omitempty"`
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	Epoch      uint64 `json:"epoch,omitempty"`
	Fenced     bool   `json:"fenced,omitempty"`
	ShedRate   float64 `json:"shed_rate,omitempty"`
}

func (g *Gateway) handleStatus(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Groups []GroupStatus `json:"groups"`
		VNodes int           `json:"vnodes"`
	}{VNodes: g.ring.VNodes()}
	for _, grp := range g.groups {
		gs := GroupStatus{Name: grp.name}
		if lead := grp.leader.Load(); lead != nil {
			gs.Leader = lead.url
		}
		for _, rep := range grp.replicas {
			role := "follower"
			if rep.role.Load() == 1 {
				role = "leader"
			}
			gs.Replicas = append(gs.Replicas, ReplicaStatus{
				URL: rep.url, Health: rep.Health().String(), Role: role,
				WALSeq: rep.walSeq.Load(), AppliedSeq: rep.appliedSeq.Load(),
				Epoch: rep.epoch.Load(), Fenced: rep.fenced.Load(),
				ShedRate: rep.shedRateValue(),
			})
		}
		out.Groups = append(out.Groups, gs)
	}
	g.writeJSON(w, http.StatusOK, out)
}

// handleObserve splits an observation batch by user shard and forwards
// each bucket to its group leader concurrently. Observations are SGD
// training steps, not idempotent upserts, so the failure status is
// chosen by what was applied: if NO bucket succeeded the backend's
// status passes through (a 503 invites a retry, which is safe — nothing
// trained), but once ANY bucket succeeded a retryable status would
// double-train the successful buckets on resend, so partial failure is
// reported as a non-retryable 500.
func (g *Gateway) handleObserve(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// Single-group deployments need no bucketing: the whole batch goes to
	// the one leader verbatim (the backend still validates it).
	if len(g.groups) == 1 {
		if g.edgeShed(w, r, g.groups[0]) {
			return
		}
		g.forwardRaw(w, r, g.groups[0].writeTarget().url+"/api/v1/observe", raw)
		return
	}
	var req server.ObserveRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Observations) == 0 {
		g.writeError(w, http.StatusBadRequest, "no observations")
		return
	}
	buckets := make(map[*group][]server.Observation)
	for _, o := range req.Observations {
		grp := g.groupFor(o.User)
		if grp == nil {
			g.unavailable(w)
			return
		}
		buckets[grp] = append(buckets[grp], o)
	}
	// Edge shedding is all-or-nothing for a batch: refusing only the
	// saturated groups' buckets would leave the same partial-application
	// hazard the error path below exists for, so a sheddable batch
	// touching ANY saturated group is refused whole (nothing trained,
	// retry is safe).
	targets := make([]*group, 0, len(buckets))
	for grp := range buckets {
		targets = append(targets, grp)
	}
	if g.edgeShed(w, r, targets...) {
		return
	}
	var (
		mu       sync.Mutex
		merged   server.ObserveResponse
		firstErr error
		okGroups int
		wg       sync.WaitGroup
	)
	for grp, obsBatch := range buckets {
		wg.Add(1)
		go func(grp *group, obsBatch []server.Observation) {
			defer wg.Done()
			var resp server.ObserveResponse
			err := g.postJSON(r.Context(), grp.writeTarget().url+"/api/v1/observe",
				server.ObserveRequest{Observations: obsBatch}, &resp)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("group %s: %w", grp.name, err)
				}
				return
			}
			okGroups++
			merged.Accepted += resp.Accepted
			merged.NewUsers += resp.NewUsers
			merged.NewServices += resp.NewServices
		}(grp, obsBatch)
	}
	wg.Wait()
	if firstErr != nil {
		if okGroups == 0 {
			// Nothing was applied anywhere: relay the backend's status
			// verbatim — retrying the whole batch is safe.
			g.writeError(w, relayStatus(firstErr), "observe: %v", firstErr)
			return
		}
		// Partial application: some groups trained their models, some did
		// not. Never relay a retryable status here (see handler comment).
		g.writeError(w, http.StatusInternalServerError,
			"observe: partially applied (%d observations accepted, %d of %d groups); not retryable: %v",
			merged.Accepted, okGroups, len(buckets), firstErr)
		return
	}
	g.writeJSON(w, http.StatusOK, merged)
}

// handlePredict proxies a single prediction to a read replica of the
// user's group, streaming the response straight through.
func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	user := r.URL.Query().Get("user")
	if user == "" {
		g.writeError(w, http.StatusBadRequest, "user query parameter is required")
		return
	}
	grp := g.groupFor(user)
	if grp == nil {
		g.unavailable(w)
		return
	}
	if g.edgeShed(w, r, grp) {
		return
	}
	target := grp.readTarget().url + "/api/v1/predict?" + r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target, nil)
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sp := trace.FromContext(r.Context())
	stampTrace(req, sp)
	stampClass(req, control.FromContext(r.Context()))
	child := g.traces.StartChild(sp, "backend "+req.URL.Host)
	resp, err := g.http.Do(req)
	if err != nil {
		child.SetError()
		child.FinishNow()
		g.proxyErrors.Inc()
		g.writeError(w, http.StatusBadGateway, "predict: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		child.SetError()
		g.proxyErrors.Inc()
	}
	child.FinishNow()
	copyResponse(w, resp)
}

// handleBatchPredict routes a candidate batch to the user's group. At or
// above the fan-out threshold the candidate list is split across the
// group's healthy replicas (each holds the full group state) and the
// partial responses are concatenated back in request order.
func (g *Gateway) handleBatchPredict(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	user, userOK := userFromJSON(raw)
	var req server.BatchPredictRequest
	if !userOK || user == "" {
		// Malformed or unroutable: decode fully for a precise 400.
		if err := json.Unmarshal(raw, &req); err != nil {
			g.writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
			return
		}
		g.writeError(w, http.StatusBadRequest, "user and services are required")
		return
	}
	grp := g.groupFor(user)
	if grp == nil {
		g.unavailable(w)
		return
	}
	if g.edgeShed(w, r, grp) {
		return
	}
	reps := grp.healthyReplicas()
	if g.cfg.FanOutThreshold < 0 || len(reps) < 2 {
		g.forwardRaw(w, r, grp.readTarget().url+"/api/v1/predict", raw)
		return
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(req.Services) == 0 {
		g.writeError(w, http.StatusBadRequest, "user and services are required")
		return
	}
	if len(req.Services) < g.cfg.FanOutThreshold {
		g.forwardRaw(w, r, grp.readTarget().url+"/api/v1/predict", raw)
		return
	}

	g.fanouts.Inc()
	chunks := splitStrings(req.Services, len(reps))
	parts := make([]server.BatchPredictResponse, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, chunk []string) {
			defer wg.Done()
			errs[i] = g.postJSON(r.Context(), reps[i].url+"/api/v1/predict",
				server.BatchPredictRequest{User: req.User, Services: chunk}, &parts[i])
		}(i, chunk)
	}
	wg.Wait()
	merged := server.BatchPredictResponse{User: req.User, Predictions: make([]server.BatchPrediction, 0, len(req.Services))}
	for i, err := range errs {
		if err != nil {
			g.writeError(w, relayStatus(err), "batch predict (replica %s): %v", reps[i].url, err)
			return
		}
		merged.Predictions = append(merged.Predictions, parts[i].Predictions...)
	}
	g.writeJSON(w, http.StatusOK, merged)
}

// handleRank routes a ranking query to the user's group. Candidate sets
// at or above the fan-out threshold are split across the group's
// healthy replicas; each replica returns its slice's top-k and the
// gateway merges the partial rankings. Full-catalog rankings (no
// candidate list) go to one replica — they cannot be split, every
// replica would scan the same catalog.
func (g *Gateway) handleRank(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	user, userOK := userFromJSON(raw)
	var req server.RankRequest
	if !userOK || user == "" {
		if err := json.Unmarshal(raw, &req); err != nil {
			g.writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
			return
		}
		g.writeError(w, http.StatusBadRequest, "user is required")
		return
	}
	grp := g.groupFor(user)
	if grp == nil {
		g.unavailable(w)
		return
	}
	if g.edgeShed(w, r, grp) {
		return
	}
	reps := grp.healthyReplicas()
	if g.cfg.FanOutThreshold < 0 || len(reps) < 2 {
		g.forwardRaw(w, r, grp.readTarget().url+"/api/v1/rank", raw)
		return
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	// Full-catalog rankings (no candidate list) cannot be split — every
	// replica would scan the same catalog — so they go to one replica.
	if len(req.Services) == 0 || len(req.Services) < g.cfg.FanOutThreshold {
		g.forwardRaw(w, r, grp.readTarget().url+"/api/v1/rank", raw)
		return
	}

	g.fanouts.Inc()
	lowerIsBetter := req.Metric != "tp" && req.Metric != "throughput"
	chunks := splitStrings(req.Services, len(reps))
	parts := make([]server.RankResponse, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, chunk []string) {
			defer wg.Done()
			sub := req
			sub.Services = chunk
			errs[i] = g.postJSON(r.Context(), reps[i].url+"/api/v1/rank", sub, &parts[i])
		}(i, chunk)
	}
	wg.Wait()
	merged := server.RankResponse{User: req.User}
	var all []server.RankedService
	for i, err := range errs {
		if err != nil {
			g.writeError(w, relayStatus(err), "rank (replica %s): %v", reps[i].url, err)
			return
		}
		merged.Metric = parts[i].Metric
		merged.Candidates += parts[i].Candidates
		merged.Unknown = append(merged.Unknown, parts[i].Unknown...)
		all = append(all, parts[i].Ranked...)
		// Partial rankings come from per-replica views; report the most
		// advanced one as the ranking's "as of" version.
		if parts[i].ViewVersion > merged.ViewVersion {
			merged.ViewVersion = parts[i].ViewVersion
		}
	}
	merged.Ranked = mergeRanked(all, req.TopK, lowerIsBetter)
	g.writeJSON(w, http.StatusOK, merged)
}

// splitStrings cuts ss into n contiguous chunks (sizes differing by at
// most one, no empty chunks unless len(ss) < n).
func splitStrings(ss []string, n int) [][]string {
	if n > len(ss) {
		n = len(ss)
	}
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(ss)/n, (i+1)*len(ss)/n
		out = append(out, ss[lo:hi])
	}
	return out
}

// mergeRanked merges per-replica partial rankings into one order, best
// first, truncated to k (k <= 0 keeps everything). The replicas ranked
// disjoint candidate slices, so this is a pure k-way merge by value —
// name tie-break keeps the order deterministic across gateways (the
// per-ID tie-break core.TopK uses is unavailable here: partial results
// carry only names).
func mergeRanked(all []server.RankedService, k int, lowerIsBetter bool) []server.RankedService {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Value != all[j].Value {
			if lowerIsBetter {
				return all[i].Value < all[j].Value
			}
			return all[i].Value > all[j].Value
		}
		return all[i].Service < all[j].Service
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// probeAll probes every replica of every group and updates routing
// state; one round also drives failover for leaderless groups.
func (g *Gateway) probeAll() {
	var wg sync.WaitGroup
	for _, grp := range g.groups {
		for _, rep := range grp.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				g.probe(rep)
			}(rep)
		}
	}
	wg.Wait()
	for _, grp := range g.groups {
		g.settleGroup(grp)
	}
}

// probe fetches one replica's cluster status and updates its health,
// role, and sequence numbers.
func (g *Gateway) probe(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/api/v1/cluster/status", nil)
	if err != nil {
		return
	}
	start := time.Now()
	resp, err := g.http.Do(req)
	g.probeLatency.Observe(time.Since(start).Seconds())
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("HTTP %d", resp.StatusCode)
		}
	}
	if err != nil {
		g.probeErrors.Inc()
		fails := rep.fails.Add(1)
		switch {
		case int(fails) >= g.cfg.DownAfter:
			rep.health.Store(int32(Down))
		default:
			rep.health.Store(int32(Suspect))
		}
		return
	}
	var st server.ClusterStatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		g.probeErrors.Inc()
		return
	}
	rep.fails.Store(0)
	rep.health.Store(int32(Healthy))
	rep.epoch.Store(st.Epoch)
	rep.fenced.Store(st.Fenced)
	rep.shedRate.Store(math.Float64bits(st.ShedRate))
	// A fenced server lost its durable-directory claim: whatever role it
	// reports, it cannot accept writes, so never treat it as a leader.
	if st.Role == "leader" && !st.Fenced {
		rep.role.Store(1)
		rep.walSeq.Store(st.WALSeq)
		rep.lagSecs.Store(0)
	} else {
		rep.role.Store(0)
		rep.appliedSeq.Store(st.AppliedSeq)
		rep.lagSecs.Store(math.Float64bits(st.LagSeconds))
	}
}

// settleGroup folds replica states into group-level routing decisions:
// the leader pointer, the ring member's health, and — when failover is
// enabled — promotion of the best follower after the leader has been
// gone DownAfter consecutive rounds. When more than one healthy replica
// claims leadership (an ex-leader recovered after the gateway promoted
// around it), the claim epoch breaks the tie — and the losers are
// actively demoted, not just routed around (see demoteStale).
func (g *Gateway) settleGroup(grp *group) {
	var claimants []*replica
	best := Down
	for _, rep := range grp.replicas {
		if h := rep.Health(); h < best {
			best = h
		}
		if rep.role.Load() == 1 && rep.Health() == Healthy {
			claimants = append(claimants, rep)
		}
	}
	grp.member.SetHealth(best)
	if len(claimants) > 0 {
		// Highest epoch claimed the durable directory most recently: by
		// construction that is the failover winner, and the promoted
		// replica recovered the group's full durable state. On epoch
		// ties (non-durable groups report 0) keep the current pointer
		// rather than flapping between claimants.
		leader := claimants[0]
		cur := grp.leader.Load()
		for _, rep := range claimants[1:] {
			e, le := rep.epoch.Load(), leader.epoch.Load()
			if e > le || (e == le && rep == cur) {
				leader = rep
			}
		}
		if len(claimants) > 1 {
			g.demoteStale(grp, claimants, leader)
		}
		grp.leader.Store(leader)
		grp.noLeader = 0
		return
	}
	grp.noLeader++
	if !g.cfg.Failover || grp.noLeader < g.cfg.DownAfter {
		return
	}
	g.failover(grp)
}

// demoteStale resolves an observed split brain: a leadership claimant
// whose epoch is strictly below the winner's is an ex-leader that
// recovered after a failover promoted a different replica over the
// same durable directory. Routing around it is not enough —
// writeTarget scans by role, so a later probe round could steer acked
// writes onto its diverged WAL lineage, where no replica and no future
// recovery would ever see them. The gateway therefore demotes stale
// claimants explicitly: the server flips to follower, fences its
// store, and answers writes with 503 + the real leader. Epoch TIES are
// left alone — without durable-claim evidence (non-durable replicas
// all report 0) demotion would be arbitrary and could take down the
// legitimate leader.
func (g *Gateway) demoteStale(grp *group, claimants []*replica, winner *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, rep := range claimants {
		if rep == winner || rep.epoch.Load() >= winner.epoch.Load() {
			continue
		}
		if err := g.postJSON(ctx, rep.url+"/api/v1/demote",
			map[string]string{"leader": winner.url}, nil); err != nil {
			// The stale claimant stays routed-around (the winner holds the
			// leader pointer); the next probe round retries the demotion.
			g.log.Warn("demoting stale leader failed",
				"group", grp.name, "stale", rep.url, "err", err)
			continue
		}
		rep.role.Store(0)
		g.demotions.Inc()
		g.log.Warn("demoted stale leader",
			"group", grp.name, "stale", rep.url, "stale_epoch", rep.epoch.Load(),
			"leader", winner.url, "leader_epoch", winner.epoch.Load())
	}
}

// failover promotes the healthiest follower — the one with the highest
// applied sequence, so the least replicated work is lost — and points
// the surviving followers at it.
func (g *Gateway) failover(grp *group) {
	var candidate *replica
	for _, rep := range grp.replicas {
		if rep.Health() != Healthy || rep.role.Load() == 1 {
			continue
		}
		// A fenced replica is a demoted ex-leader that lost the durable
		// directory to a newer claimant; promoting it would re-grab the
		// lock over the legitimate owner's head, round after round.
		if rep.fenced.Load() {
			continue
		}
		if candidate == nil || rep.appliedSeq.Load() > candidate.appliedSeq.Load() {
			candidate = rep
		}
	}
	if candidate == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.postJSON(ctx, candidate.url+"/api/v1/promote", struct{}{}, nil); err != nil {
		g.log.Warn("promotion failed", "group", grp.name, "candidate", candidate.url, "err", err)
		return
	}
	g.failovers.Inc()
	candidate.role.Store(1)
	grp.leader.Store(candidate)
	grp.noLeader = 0
	g.log.Info("promoted new leader", "group", grp.name, "leader", candidate.url)
	for _, rep := range grp.replicas {
		if rep == candidate || rep.Health() == Down {
			continue
		}
		if err := g.postJSON(ctx, rep.url+"/api/v1/cluster/leader",
			map[string]string{"leader": candidate.url}, nil); err != nil {
			g.log.Warn("re-pointing follower failed", "follower", rep.url, "err", err)
		}
	}
}
