// Quickstart: generate a small QoS dataset, train AMF online on a sparse
// sample stream, and predict the QoS of service invocations that were
// never observed — the core candidate-service prediction task of the
// paper.
package main

import (
	"fmt"
	"log"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/eval"
	"github.com/qoslab/amf/internal/stream"
)

func main() {
	// A miniature cloud: 40 users, 200 web services, observed over
	// 15-minute time slices (the real dataset in the paper is 142 x
	// 4,500 x 64).
	cfg := dataset.Config{Users: 40, Services: 200, Slices: 8, Interval: dataset.DefaultConfig().Interval, Rank: 6, Seed: 42}
	gen, err := dataset.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Keep 20% of the user-service matrix as observed training data;
	// the removed 80% is what we must predict.
	split, err := stream.SliceSplit(gen, dataset.ResponseTime, 0, 0.20, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %d QoS samples, predicting %d unknown pairs\n",
		len(split.Train), len(split.Test))

	// AMF with the paper's hyperparameters for response time:
	// d=10, eta=0.8, lambda=0.001, beta=0.3, Box-Cox alpha=-0.007.
	rmin, rmax := dataset.ResponseTime.Range()
	amfCfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
	amfCfg.Expiry = 0 // single-slice quickstart: nothing expires
	model, err := core.New(amfCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Online training: feed the stream one sample at a time, then let
	// the model keep refining on its replay pool until convergence.
	model.ObserveAll(split.Train)
	fit := model.Fit(core.FitOptions{})
	fmt.Printf("trained: %d epochs, %d SGD updates, converged=%v\n",
		fit.Epochs, fit.Steps, fit.Converged)

	// Predict a few never-observed invocations and compare with truth.
	fmt.Println("\nsample predictions (user, service): predicted vs actual RT")
	for _, s := range split.Test[:8] {
		got, err := model.Predict(s.User, s.Service)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%2d, %3d): %6.3f s vs %6.3f s\n", s.User, s.Service, got, s.Value)
	}

	// Aggregate accuracy with the paper's metrics.
	m := eval.Compute(func(u, s int) (float64, bool) {
		v, err := model.Predict(u, s)
		return v, err == nil
	}, split.Test)
	fmt.Printf("\naccuracy on %d held-out pairs: MAE=%.3f MRE=%.3f NPRE=%.3f\n",
		m.N, m.MAE, m.MRE, m.NPRE)
}
