// Onlineserver: the QoS prediction service of the paper's framework
// (Fig. 3), exercised end to end over HTTP. A prediction service is
// started in-process; simulated users continuously upload the QoS they
// observe; the service updates its AMF model online in the background;
// and an application asks it to rank candidate services for an
// adaptation decision.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/qoslab/amf/internal/client"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/engine"
	"github.com/qoslab/amf/internal/server"
)

func main() {
	// The environment users measure against.
	gen, err := dataset.New(dataset.Config{
		Users: 20, Services: 60, Slices: 8,
		Interval: dataset.DefaultConfig().Interval,
		Rank:     5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The prediction service (normally `amfserver`; in-process here so
	// the example is self-contained and runs anywhere). The model is
	// wrapped in a serving engine: predictions read an immutable
	// published view without locking, while observations and background
	// replay flow through the engine's single writer, which republishes
	// the view every 128 updates or 10ms — the staleness bound clients
	// observe.
	rmin, rmax := dataset.ResponseTime.Range()
	cfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
	cfg.Expiry = 0
	eng := engine.New(core.MustNew(cfg), engine.Config{
		PublishEvery:    128,
		PublishInterval: 10 * time.Millisecond,
	})
	svc := server.NewWithEngine(eng)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go svc.RunReplay(ctx, 5*time.Millisecond, 2000)

	c := client.New(ts.URL, nil)
	if err := c.Health(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("prediction service is up at", ts.URL)

	// Phase 1 - input handling: each user uploads the QoS it observed on
	// a third of the services (nobody has seen everything; that is the
	// point of collaborative prediction).
	dsCfg := gen.Config()
	var uploaded int
	for u := 0; u < dsCfg.Users; u++ {
		var obs []server.Observation
		for s := 0; s < dsCfg.Services; s++ {
			if (u+s)%3 != 0 {
				continue
			}
			obs = append(obs, server.Observation{
				User:    fmt.Sprintf("app-%02d", u),
				Service: fmt.Sprintf("ws-%02d", s),
				Value:   gen.Value(dataset.ResponseTime, u, s, 0),
			})
		}
		resp, err := c.Observe(ctx, obs)
		if err != nil {
			log.Fatal(err)
		}
		uploaded += resp.Accepted
	}
	fmt.Printf("users uploaded %d observations\n", uploaded)

	// Phase 2 - online updating happens in the background (RunReplay).
	time.Sleep(300 * time.Millisecond)
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service state: %d users, %d services, %d model updates\n",
		stats.Users, stats.Services, stats.Updates)

	// Phase 3 - QoS prediction: app-07 wants to replace a degraded
	// working service and asks the service to rank candidates it has
	// NEVER invoked itself.
	user := "app-07"
	candidates := []string{"ws-05", "ws-11", "ws-25", "ws-40", "ws-55"}
	preds, err := c.PredictBatch(ctx, user, candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncandidate ranking for %s:\n", user)
	for _, p := range preds {
		if p.OK {
			fmt.Printf("  %-6s predicted RT %.3f s\n", p.Service, p.Value)
		} else {
			fmt.Printf("  %-6s (no prediction)\n", p.Service)
		}
	}
	best, val, ok, err := c.BestCandidate(ctx, user, candidates)
	if err != nil || !ok {
		log.Fatal("no candidate available: ", err)
	}
	fmt.Printf("\nadaptation decision: bind %s (predicted %.3f s)\n", best, val)

	// The serving engine's own accounting: how many samples flowed
	// through the update loop and how many immutable views were
	// published for the lock-free read path.
	st := eng.Stats()
	fmt.Printf("\nengine: applied %d samples, replayed %d, published %d views (v%d)\n",
		st.Applied, st.Replayed, st.Published, st.Version)
}
