// Operations: the day-2 story of running the QoS prediction service —
// state snapshots for restarts, the /metrics counters, and the /flagged
// endpoint that surfaces which users and services the model is currently
// unsure about (fresh joiners and shifted QoS regimes), so operators and
// adaptation policies can treat their predictions with caution.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/qoslab/amf/internal/client"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/server"
)

func main() {
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	// Seed a converged fleet and let replay tighten the factors.
	var obs []server.Observation
	for u := 0; u < 8; u++ {
		for s := 0; s < 12; s++ {
			obs = append(obs, server.Observation{
				User:    fmt.Sprintf("app-%d", u),
				Service: fmt.Sprintf("ws-%d", s),
				Value:   0.4 + 0.1*float64((u+2)*(s+1)%9),
			})
		}
	}
	if _, err := c.Observe(ctx, obs); err != nil {
		log.Fatal(err)
	}
	// One joiner with a single observation: the model cannot trust its
	// predictions yet.
	if _, err := c.Observe(ctx, []server.Observation{
		{User: "app-new", Service: "ws-0", Value: 5},
	}); err != nil {
		log.Fatal(err)
	}

	flagged, err := c.Flagged(ctx, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entities flagged at error >= 0.6: %d users, %d services\n",
		len(flagged.Users), len(flagged.Services))
	for _, f := range flagged.Users {
		fmt.Printf("  user %-8s tracked error %.2f\n", f.Name, f.Error)
	}

	// /metrics: the scrape a monitoring stack would take.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected /metrics lines:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "amf_observations_total") ||
			strings.HasPrefix(line, "amf_model_users") ||
			strings.HasPrefix(line, "amf_model_updates_total") {
			fmt.Println(" ", line)
		}
	}

	// Snapshot for restart: state travels as opaque bytes.
	snap, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		log.Fatal(err)
	}
	data, err := io.ReadAll(snap.Body)
	snap.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstate snapshot: %d bytes (restore with POST /api/v1/snapshot or amfserver -state)\n", len(data))
}
