// Operations: the day-2 story of running the QoS prediction service —
// state snapshots for restarts, the /metrics scrape an SRE dashboard
// would take (per-route latency quantiles, live prediction accuracy),
// and the /flagged endpoint that surfaces which users and services the
// model is currently unsure about (fresh joiners and shifted QoS
// regimes), so operators and adaptation policies can treat their
// predictions with caution.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"github.com/qoslab/amf/internal/client"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/server"
)

func main() {
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := context.Background()

	// Seed a converged fleet and let replay tighten the factors.
	var seedObs []server.Observation
	for u := 0; u < 8; u++ {
		for s := 0; s < 12; s++ {
			seedObs = append(seedObs, server.Observation{
				User:    fmt.Sprintf("app-%d", u),
				Service: fmt.Sprintf("ws-%d", s),
				Value:   0.4 + 0.1*float64((u+2)*(s+1)%9),
			})
		}
	}
	if _, err := c.Observe(ctx, seedObs); err != nil {
		log.Fatal(err)
	}
	// One joiner with a single observation: the model cannot trust its
	// predictions yet.
	if _, err := c.Observe(ctx, []server.Observation{
		{User: "app-new", Service: "ws-0", Value: 5},
	}); err != nil {
		log.Fatal(err)
	}

	flagged, err := c.Flagged(ctx, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entities flagged at error >= 0.6: %d users, %d services\n",
		len(flagged.Users), len(flagged.Services))
	for _, f := range flagged.Users {
		fmt.Printf("  user %-8s tracked error %.2f\n", f.Name, f.Error)
	}

	// A second observation round: now every pair has a prior prediction,
	// so the live accuracy tracker scores each incoming value (the
	// paper's MRE/NPRE, computed online instead of in a batch study).
	if _, err := c.Observe(ctx, obs2(seedObs)); err != nil {
		log.Fatal(err)
	}

	// A burst of predictions: the traffic whose latency the per-route
	// histograms capture.
	for i := 0; i < 400; i++ {
		if _, err := c.Predict(ctx, fmt.Sprintf("app-%d", i%8), fmt.Sprintf("ws-%d", i%12)); err != nil {
			log.Fatal(err)
		}
	}

	// /metrics: the scrape a monitoring stack would take.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected /metrics lines:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "amf_observations_total") ||
			strings.HasPrefix(line, "amf_model_users") ||
			strings.HasPrefix(line, "amf_model_updates_total") {
			fmt.Println(" ", line)
		}
	}

	// The dashboard line: parse the scrape with the strict text-format
	// parser and reconstruct latency quantiles from the histogram
	// buckets — exactly what a Prometheus histogram_quantile() would do.
	tm, err := obs.ParseMetrics(bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		log.Fatal(err)
	}
	route := map[string]string{"route": "GET /api/v1/predict"}
	p50, _ := tm.HistogramQuantile("amf_http_request_duration_seconds", route, 0.50)
	p95, _ := tm.HistogramQuantile("amf_http_request_duration_seconds", route, 0.95)
	p99, _ := tm.HistogramQuantile("amf_http_request_duration_seconds", route, 0.99)
	mre, _ := tm.Value("amf_accuracy_mre", nil)
	npre, _ := tm.Value("amf_accuracy_npre", nil)
	scored, _ := tm.Value("amf_accuracy_samples_total", nil)
	fmt.Printf("\ndashboard: predict p50=%s p95=%s p99=%s | live MRE=%.3f NPRE=%.3f (%d scored)\n",
		fmtLatency(p50), fmtLatency(p95), fmtLatency(p99), mre, npre, int(scored))

	// Snapshot for restart: state travels as opaque bytes.
	snap, err := http.Get(ts.URL + "/api/v1/snapshot")
	if err != nil {
		log.Fatal(err)
	}
	data, err := io.ReadAll(snap.Body)
	snap.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstate snapshot: %d bytes (restore with POST /api/v1/snapshot or amfserver -state)\n", len(data))
}

// obs2 perturbs the seed fleet's values slightly: a realistic second
// measurement round rather than an identical replay.
func obs2(seed []server.Observation) []server.Observation {
	out := make([]server.Observation, len(seed))
	for i, o := range seed {
		o.Value *= 1.02
		out[i] = o
	}
	return out
}

// fmtLatency renders a latency in the most readable unit.
func fmtLatency(seconds float64) string {
	switch {
	case seconds <= 0:
		return "0"
	case seconds < 1e-3:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.2fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}
