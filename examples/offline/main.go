// Offline: evaluate every prediction approach on a QoS dataset loaded
// from disk. This is the workflow for users who bring their own
// measurements: serialize them in the triplet format (cmd/qosgen emits
// it; any tool can), then compare UMEAN/IMEAN/UPCC/IPCC/UIPCC/PMF and AMF
// on a held-out split.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/eval"
	"github.com/qoslab/amf/internal/stream"
)

func main() {
	// Produce a dataset file in memory (equivalently:
	//   qosgen -out qos.txt -users 40 -services 200 -slices 4 -density 0.25).
	cfg := dataset.Config{Users: 40, Services: 200, Slices: 4,
		Interval: dataset.DefaultConfig().Interval, Rank: 6, Seed: 17}
	gen, err := dataset.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var file bytes.Buffer
	var triplets []dataset.Triplet
	sampler := rand.New(rand.NewSource(17))
	for i := 0; i < cfg.Users; i++ {
		for j := 0; j < cfg.Services; j++ {
			if sampler.Float64() < 0.25 {
				triplets = append(triplets, dataset.Triplet{
					User: i, Service: j, Slice: 0,
					Value: gen.Value(dataset.ResponseTime, i, j, 0),
				})
			}
		}
	}
	if err := dataset.WriteTriplets(&file, dataset.ResponseTime, cfg.Users, cfg.Services, cfg.Slices, triplets); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset file: %d bytes, %d observations\n", file.Len(), len(triplets))

	// Load it back — this is where a real user's pipeline starts.
	attr, users, services, _, loaded, err := dataset.ReadTriplets(&file)
	if err != nil {
		log.Fatal(err)
	}
	samples := stream.TripletsToSamples(loaded, cfg.Interval)

	// Hold out 30% of the loaded observations for evaluation.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(samples), func(a, b int) { samples[a], samples[b] = samples[b], samples[a] })
	cut := len(samples) * 7 / 10
	split := stream.Split{Train: samples[:cut], Test: samples[cut:]}
	ctx := eval.NewTrainContext(attr, users, services, split, 1)

	fmt.Printf("training on %d observations, evaluating on %d held-out\n\n", len(split.Train), len(split.Test))
	fmt.Printf("%-10s %8s %8s %8s\n", "approach", "MAE", "MRE", "NPRE")
	for _, a := range eval.ExtendedApproaches() {
		pred, err := a.Train(ctx)
		if err != nil {
			log.Fatal(err)
		}
		m := eval.Compute(pred, split.Test)
		fmt.Printf("%-10s %8.3f %8.3f %8.3f\n", a.Name, m.MAE, m.MRE, m.NPRE)
	}
	fmt.Println("\n(smaller is better; AMF rows should lead on MRE and NPRE)")
}
