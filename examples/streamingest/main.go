// Streamingest: high-frequency QoS monitoring over the TCP stream-ingest
// protocol. The paper's framework (Fig. 3) describes observed QoS data
// arriving as "formatted stream data"; this example runs the prediction
// service with its stream listener, has several QoS monitors push
// line-format observations concurrently, and then queries predictions
// over the HTTP API — the two protocols share one model.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"github.com/qoslab/amf/internal/client"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/ingest"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/workload"
)

func main() {
	gen, err := dataset.New(dataset.Config{
		Users: 12, Services: 40, Slices: 4,
		Interval: dataset.DefaultConfig().Interval,
		Rank:     5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Prediction service with both frontends: HTTP for queries, TCP
	// stream ingest for observation feeds.
	rmin, rmax := dataset.ResponseTime.Range()
	cfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
	cfg.Expiry = 0
	svc := server.New(core.MustNew(cfg))
	httpSrv := httptest.NewServer(svc.Handler())
	defer httpSrv.Close()

	listener, err := ingest.Listen("127.0.0.1:0", svc)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := listener.Serve(ctx); err != nil {
			log.Print(err)
		}
	}()
	go svc.RunReplay(ctx, 5*time.Millisecond, 2000)
	fmt.Printf("HTTP API at %s, stream ingest at %s\n", httpSrv.URL, listener.Addr())

	// Each monitor owns one user: it invokes services on a Poisson
	// schedule and streams what it measures.
	dsCfg := gen.Config()
	var wg sync.WaitGroup
	for u := 0; u < dsCfg.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			w, err := ingest.Dial(listener.Addr().String(), time.Second)
			if err != nil {
				log.Print(err)
				return
			}
			defer w.Close()
			events, err := workload.Trace(workload.TraceOptions{
				Users: 1, Horizon: time.Hour, MeanRate: 120, Seed: int64(u + 1),
			})
			if err != nil {
				log.Print(err)
				return
			}
			for i, e := range events {
				svcID := (u*7 + i*3) % dsCfg.Services
				rt := gen.Value(dataset.ResponseTime, u, svcID, int(e.Time/dsCfg.Interval)%dsCfg.Slices)
				if err := w.Send(fmt.Sprintf("app-%02d", u), fmt.Sprintf("ws-%02d", svcID), rt, 0); err != nil {
					log.Print(err)
					return
				}
			}
			if err := w.Ping(2 * time.Second); err != nil {
				log.Print(err)
			}
		}(u)
	}
	wg.Wait()
	accepted, lines, rejected := listener.Stats()
	fmt.Printf("stream ingest: %d connections, %d observations, %d rejected\n", accepted, lines, rejected)

	// Give background replay a moment, then query over HTTP.
	time.Sleep(200 * time.Millisecond)
	c := client.New(httpSrv.URL, nil)
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d users, %d services, %d updates\n", stats.Users, stats.Services, stats.Updates)

	best, val, ok, err := c.BestCandidate(ctx, "app-03", []string{"ws-01", "ws-05", "ws-09", "ws-13"})
	if err != nil || !ok {
		log.Fatal("no candidate: ", err)
	}
	fmt.Printf("best candidate for app-03: %s (predicted RT %.3f s)\n", best, val)
}
