// Adaptation: the paper's end-to-end motivation. A fleet of service-based
// applications runs a three-task workflow against a simulated cloud;
// response times drift and spike over time. Four adaptation policies are
// compared under identical conditions: never adapt, adapt to a random
// candidate, adapt to the candidate AMF predicts best (the paper's
// proposal), and adapt with ground-truth knowledge (the oracle bound).
package main

import (
	"fmt"
	"log"

	"github.com/qoslab/amf/internal/adapt"
	"github.com/qoslab/amf/internal/dataset"
)

func main() {
	cfg := dataset.Config{
		Users: 30, Services: 120, Slices: 12,
		Interval: dataset.DefaultConfig().Interval,
		Rank:     6, Seed: 7,
	}
	opts := adapt.SimulationOptions{
		Dataset:           cfg,
		Tasks:             3,
		CandidatesPerTask: 10,
		SLA:               2.0, // seconds per task
		Seed:              7,
	}
	fmt.Printf("simulating %d users x %d slices; workflow of %d tasks, %d candidates each, SLA %.1f s\n\n",
		cfg.Users, cfg.Slices, opts.Tasks, opts.CandidatesPerTask, opts.SLA)

	res, err := adapt.RunSimulation(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %14s %15s %13s\n", "strategy", "mean latency", "violation rate", "adaptations")
	var static, predicted adapt.StrategyResult
	for _, s := range res.Strategies {
		fmt.Printf("%-10s %13.3fs %15.3f %13d\n", s.Name, s.MeanLatency, s.ViolationRate, s.Adaptations)
		switch s.Name {
		case "static":
			static = s
		case "predicted":
			predicted = s
		}
	}
	if static.ViolationRate > 0 {
		fmt.Printf("\nAMF-driven adaptation removed %.0f%% of SLA violations relative to no adaptation\n",
			(1-predicted.ViolationRate/static.ViolationRate)*100)
	}
	fmt.Println("(the oracle row is the upper bound any predictor can reach)")
}
