// Churn: the paper's scalability scenario (Fig. 14) as a narrated demo.
// AMF is trained to convergence on 80% of users and services; then the
// remaining 20% join the environment at once. Watch the newcomers' median
// relative error collapse within a few replay rounds while the incumbents
// stay stable — the effect of AMF's adaptive weights.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/eval"
)

func main() {
	res, err := eval.RunFig14(eval.Fig14Options{
		Dataset: dataset.Config{
			Users: 40, Services: 160, Slices: 4,
			Interval: dataset.DefaultConfig().Interval,
			Rank:     6, Seed: 11,
		},
		Attr:          dataset.ResponseTime,
		Density:       0.35,
		Seed:          11,
		PointsBefore:  5,
		PointsAfter:   10,
		StepsPerPoint: 4000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MRE over time (# = existing users/services, * = newcomers)")
	fmt.Println(strings.Repeat("-", 64))
	for _, p := range res.Points {
		marker := ""
		if p.AfterJoin {
			marker = fmt.Sprintf("  new: %.3f %s", p.NewMRE, bar(p.NewMRE, '*'))
		}
		fmt.Printf("step %7d  existing: %.3f %s%s\n", p.Steps, p.ExistingMRE, bar(p.ExistingMRE, '#'), marker)
	}
	fmt.Println(strings.Repeat("-", 64))
	first, last, drift := res.NewcomerConvergence()
	fmt.Printf("newcomers joined at step %d: MRE %.3f -> %.3f\n", res.JoinStep, first, last)
	fmt.Printf("incumbents' worst post-churn drift: %.1f%% (adaptive weights keep them stable)\n", drift*100)
}

func bar(v float64, c byte) string {
	n := int(v * 30)
	if n > 40 {
		n = 40
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat(string(c), n)
}
