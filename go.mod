module github.com/qoslab/amf

go 1.22
