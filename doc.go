// Package amf is a Go reproduction of "Towards Online, Accurate, and
// Scalable QoS Prediction for Runtime Service Adaptation" (Zhu, He, Zheng,
// Lyu — ICDCS 2014).
//
// The library implements the paper's contribution, Adaptive Matrix
// Factorization (internal/core), the four baselines it compares against
// (internal/baseline), a synthetic stand-in for the WS-DREAM QoS dataset
// (internal/dataset), an experiment harness regenerating every table and
// figure of the evaluation (internal/eval, cmd/amfbench), and the
// QoS-driven service adaptation framework of Section III (internal/adapt,
// internal/server, internal/client).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The benchmarks in bench_test.go regenerate each experiment in miniature;
// `go run ./cmd/amfbench -exp all` runs them at configurable scale.
package amf
