package amf

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation section, plus ablation benches for the design decisions
// called out in DESIGN.md. Accuracy results are attached to the benchmark
// output via b.ReportMetric (MRE/NPRE/etc.), so `go test -bench=. -benchmem`
// regenerates both the performance and the accuracy side of each
// experiment at a reduced scale; `cmd/amfbench -scale paper` runs the full
// shape.

import (
	"testing"
	"time"

	"github.com/qoslab/amf/internal/adapt"
	"github.com/qoslab/amf/internal/baseline"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/eval"
	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/stream"
)

// benchDataset is the reduced-scale dataset every benchmark runs against.
func benchDataset() dataset.Config {
	return dataset.Config{Users: 40, Services: 250, Slices: 8, Interval: 15 * time.Minute, Rank: 6, Seed: 2014}
}

func benchSplit(b *testing.B, attr dataset.Attribute, density float64) (stream.Split, eval.TrainContext) {
	b.Helper()
	gen, err := dataset.New(benchDataset())
	if err != nil {
		b.Fatal(err)
	}
	sp, err := stream.SliceSplit(gen, attr, 0, density, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchDataset()
	return sp, eval.NewTrainContext(attr, cfg.Users, cfg.Services, sp, 1)
}

// benchApproach trains one Table-I approach and reports its accuracy
// metrics alongside the training cost per op.
func benchApproach(b *testing.B, a eval.Approach, attr dataset.Attribute, density float64) {
	b.Helper()
	sp, ctx := benchSplit(b, attr, density)
	var m eval.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := a.Train(ctx)
		if err != nil {
			b.Fatal(err)
		}
		m = eval.Compute(pred, sp.Test)
	}
	b.ReportMetric(m.MAE, "MAE")
	b.ReportMetric(m.MRE, "MRE")
	b.ReportMetric(m.NPRE, "NPRE")
}

// --- Table I: accuracy comparison (one bench per approach x attribute) ---

func BenchmarkTable1_RT_UPCC(b *testing.B) {
	benchApproach(b, eval.UPCCApproach(), dataset.ResponseTime, 0.10)
}

func BenchmarkTable1_RT_IPCC(b *testing.B) {
	benchApproach(b, eval.IPCCApproach(), dataset.ResponseTime, 0.10)
}

func BenchmarkTable1_RT_UIPCC(b *testing.B) {
	benchApproach(b, eval.UIPCCApproach(), dataset.ResponseTime, 0.10)
}

func BenchmarkTable1_RT_PMF(b *testing.B) {
	benchApproach(b, eval.PMFApproach(), dataset.ResponseTime, 0.10)
}

func BenchmarkTable1_RT_AMF(b *testing.B) {
	benchApproach(b, eval.AMFApproach("AMF", eval.AMFOverrides{}), dataset.ResponseTime, 0.10)
}

func BenchmarkTable1_TP_UIPCC(b *testing.B) {
	benchApproach(b, eval.UIPCCApproach(), dataset.Throughput, 0.10)
}

func BenchmarkTable1_TP_PMF(b *testing.B) {
	benchApproach(b, eval.PMFApproach(), dataset.Throughput, 0.10)
}

func BenchmarkTable1_TP_AMF(b *testing.B) {
	benchApproach(b, eval.AMFApproach("AMF", eval.AMFOverrides{}), dataset.Throughput, 0.10)
}

// --- Fig. 2 / 6 / 7 / 8: dataset shape ---

func BenchmarkFig2Series(b *testing.B) {
	gen := dataset.MustNew(benchDataset())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Fig2a(gen, 0, 0)
		_ = eval.Fig2b(gen, 1, 0, 40)
	}
}

func BenchmarkFig6Statistics(b *testing.B) {
	gen := dataset.MustNew(benchDataset())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := gen.SampleStatistics(2, 2000)
		b.ReportMetric(s.RT.Mean, "RTmean")
		b.ReportMetric(s.TP.Mean, "TPmean")
	}
}

func BenchmarkFig7Histograms(b *testing.B) {
	gen := dataset.MustNew(benchDataset())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, tp := eval.Fig7(gen, 25, 2, 2000)
		if rt.Total() == 0 || tp.Total() == 0 {
			b.Fatal("empty histograms")
		}
	}
}

func BenchmarkFig8Transformed(b *testing.B) {
	gen := dataset.MustNew(benchDataset())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eval.Fig8(gen, 25, 2, 2000); err != nil {
			b.Fatal(err)
		}
	}
	before, after, err := eval.SkewReduction(gen, dataset.ResponseTime, 4000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(before, "skewRaw")
	b.ReportMetric(after, "skewCooked")
}

// --- Fig. 9: singular values (Jacobi SVD of the slice matrix) ---

func BenchmarkFig9SingularValues(b *testing.B) {
	gen := dataset.MustNew(benchDataset())
	m := gen.SliceMatrix(dataset.ResponseTime, 0)
	b.ResetTimer()
	var sv []float64
	for i := 0; i < b.N; i++ {
		var err error
		sv, err = matrix.SingularValues(m, matrix.JacobiOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	norm := matrix.NormalizeDescending(sv)
	b.ReportMetric(norm[10], "sv10")
	b.ReportMetric(float64(matrix.EffectiveRank(sv, 0.2)), "effRank")
}

// --- Fig. 10: error distribution (center mass within +/-0.5) ---

func BenchmarkFig10ErrorDistribution(b *testing.B) {
	var res *eval.Fig10Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunFig10(eval.Fig10Options{Dataset: benchDataset(), Attr: dataset.ResponseTime, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CenterMass("AMF", 0.5), "AMFcenter")
	b.ReportMetric(res.CenterMass("PMF", 0.5), "PMFcenter")
	b.ReportMetric(res.CenterMass("UIPCC", 0.5), "UIPCCcenter")
}

// --- Fig. 11: impact of data transformation ---

func BenchmarkFig11Transformation(b *testing.B) {
	var res *eval.Table1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunFig11(eval.Fig11Options{
			Dataset: benchDataset(), Attr: dataset.ResponseTime,
			Densities: []float64{0.3}, Rounds: 1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Row("PMF", 0.3).Metrics.MRE, "PMF_MRE")
	b.ReportMetric(res.Row("AMF(a=1)", 0.3).Metrics.MRE, "AMFa1_MRE")
	b.ReportMetric(res.Row("AMF", 0.3).Metrics.MRE, "AMF_MRE")
}

// --- Fig. 12: impact of matrix density ---

func BenchmarkFig12Density(b *testing.B) {
	var res *eval.Table1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunFig12(eval.Fig12Options{
			Dataset: benchDataset(), Attr: dataset.ResponseTime,
			Densities: []float64{0.05, 0.25, 0.50}, Rounds: 1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Row("AMF", 0.05).Metrics.MRE, "MRE5pct")
	b.ReportMetric(res.Row("AMF", 0.50).Metrics.MRE, "MRE50pct")
}

// --- Fig. 13: efficiency (per-slice convergence time) ---

func BenchmarkFig13Efficiency(b *testing.B) {
	var res *eval.Fig13Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunFig13(eval.Fig13Options{
			Dataset: benchDataset(), Attr: dataset.ResponseTime, Slices: 4, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	speedups := res.SpeedupAfterWarmup()
	b.ReportMetric(speedups["UIPCC"], "xUIPCC")
	b.ReportMetric(speedups["PMF"], "xPMF")
	b.ReportMetric(float64(res.AMFEpochs[0]), "coldEpochs")
	b.ReportMetric(float64(res.AMFEpochs[len(res.AMFEpochs)-1]), "warmEpochs")
}

// --- Fig. 14: scalability under churn ---

func BenchmarkFig14Churn(b *testing.B) {
	var res *eval.Fig14Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunFig14(eval.Fig14Options{
			Dataset: benchDataset(), Attr: dataset.ResponseTime, Seed: 1,
			PointsBefore: 3, PointsAfter: 5, StepsPerPoint: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last, drift := res.NewcomerConvergence()
	b.ReportMetric(first, "newFirstMRE")
	b.ReportMetric(last, "newLastMRE")
	b.ReportMetric(drift, "incumbentDrift")
}

// --- Ablations (DESIGN.md design decisions) ---

// BenchmarkAblationLoss compares the relative-error loss (Eq. 6) against
// the conventional absolute loss on MRE: design decision #1.
func BenchmarkAblationLoss(b *testing.B) {
	off := false
	variants := map[string]eval.AMFOverrides{
		"relative": {},
		"absolute": {RelativeLoss: &off},
	}
	for name, ov := range variants {
		b.Run(name, func(b *testing.B) {
			benchApproach(b, eval.AMFApproach("AMF", ov), dataset.ResponseTime, 0.10)
		})
	}
}

// BenchmarkAblationWeights compares adaptive weights (Eq. 16-17) against
// plain unweighted online MF (Eq. 8-9): design decision #3.
func BenchmarkAblationWeights(b *testing.B) {
	off := false
	variants := map[string]eval.AMFOverrides{
		"adaptive": {},
		"fixed":    {AdaptiveWeights: &off},
	}
	for name, ov := range variants {
		b.Run(name, func(b *testing.B) {
			benchApproach(b, eval.AMFApproach("AMF", ov), dataset.ResponseTime, 0.10)
		})
	}
}

// BenchmarkAblationTransform compares the tuned Box-Cox alpha against the
// linear normalization (alpha=1): design decision #2, the Fig. 11 axis.
func BenchmarkAblationTransform(b *testing.B) {
	one := 1.0
	variants := map[string]eval.AMFOverrides{
		"boxcox": {},
		"linear": {Alpha: &one},
	}
	for name, ov := range variants {
		b.Run(name, func(b *testing.B) {
			benchApproach(b, eval.AMFApproach("AMF", ov), dataset.ResponseTime, 0.10)
		})
	}
}

// --- Micro-benchmarks: the online path ---

// BenchmarkObserve measures the cost of one online SGD update, the unit
// of AMF's streaming pipeline.
func BenchmarkObserve(b *testing.B) {
	rmin, rmax := dataset.ResponseTime.Range()
	cfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
	cfg.Expiry = 0
	m := core.MustNew(cfg)
	gen := dataset.MustNew(benchDataset())
	ds := benchDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := i % ds.Users
		s := (i * 7) % ds.Services
		m.Observe(stream.Sample{Time: time.Duration(i), User: u, Service: s,
			Value: gen.Value(dataset.ResponseTime, u, s, i%ds.Slices)})
	}
}

// BenchmarkReplayStep measures the replay-pool update path.
func BenchmarkReplayStep(b *testing.B) {
	rmin, rmax := dataset.ResponseTime.Range()
	cfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
	cfg.Expiry = 0
	m := core.MustNew(cfg)
	gen := dataset.MustNew(benchDataset())
	for i := 0; i < 5000; i++ {
		m.Observe(stream.Sample{Time: time.Duration(i), User: i % 40, Service: i % 250,
			Value: gen.Value(dataset.ResponseTime, i%40, i%250, 0)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.ReplayStep() {
			b.Fatal("pool went empty")
		}
	}
}

// BenchmarkPredict measures a single prediction (inner product + sigmoid
// + inverse transform).
func BenchmarkPredict(b *testing.B) {
	rmin, rmax := dataset.ResponseTime.Range()
	cfg := core.DefaultConfig(dataset.ResponseTime.DefaultAlpha(), rmin, rmax)
	cfg.Expiry = 0
	m := core.MustNew(cfg)
	for i := 0; i < 1000; i++ {
		m.Observe(stream.Sample{Time: time.Duration(i), User: i % 20, Service: i % 50, Value: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(i%20, i%50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPMFTrain measures the offline baseline's full retraining cost,
// the quantity AMF's online updating amortizes away (Fig. 13's point).
func BenchmarkPMFTrain(b *testing.B) {
	_, ctx := benchSplit(b, dataset.ResponseTime, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TrainPMF(ctx.Matrix, baseline.PMFConfig{Rank: 10, RMax: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- End-to-end adaptation (framework Sec. III) ---

func BenchmarkAdaptationSimulation(b *testing.B) {
	var res *adapt.SimulationResult
	cfg := benchDataset()
	cfg.Slices = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = adapt.RunSimulation(adapt.SimulationOptions{Dataset: cfg, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range res.Strategies {
		switch s.Name {
		case "static":
			b.ReportMetric(s.ViolationRate, "staticViol")
		case "predicted":
			b.ReportMetric(s.ViolationRate, "predViol")
		case "oracle":
			b.ReportMetric(s.ViolationRate, "oracleViol")
		}
	}
}

func BenchmarkTable1_RT_BiasedMF(b *testing.B) {
	benchApproach(b, eval.BiasedMFApproach(), dataset.ResponseTime, 0.10)
}

func BenchmarkAMFAutoAlpha(b *testing.B) {
	benchApproach(b, eval.AMFAutoAlphaApproach(), dataset.ResponseTime, 0.10)
}

// BenchmarkSliceSeries regenerates the supplementary all-slices series in
// miniature.
func BenchmarkSliceSeries(b *testing.B) {
	var res *eval.SliceSeriesResult
	cfg := benchDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunSliceSeries(eval.SliceSeriesOptions{
			Dataset: cfg, Attr: dataset.ResponseTime, Slices: 2, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanMRE("AMF"), "AMF_MRE")
	b.ReportMetric(res.MeanMRE("UIPCC"), "UIPCC_MRE")
}

func BenchmarkTable1_RT_NIMF(b *testing.B) {
	benchApproach(b, eval.NIMFApproach(), dataset.ResponseTime, 0.10)
}

// BenchmarkTruncatedSVD compares the power-iteration top-k path against
// the full Jacobi sweep on the Fig. 9 workload shape.
func BenchmarkTruncatedSVD(b *testing.B) {
	gen := dataset.MustNew(benchDataset())
	m := gen.SliceMatrix(dataset.ResponseTime, 0)
	b.Run("jacobi-full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.SingularValues(m, matrix.JacobiOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("power-top10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrix.TopSingularValues(m, 10, matrix.TruncatedOptions{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrequential regenerates the test-then-train online-accuracy
// extension in miniature.
func BenchmarkPrequential(b *testing.B) {
	var res *eval.PrequentialResult
	cfg := benchDataset()
	cfg.Slices = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunPrequential(eval.PrequentialOptions{
			Dataset: cfg, Attr: dataset.ResponseTime, Density: 0.2, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanMRE(), "blindMRE")
}

// BenchmarkChurnAblation quantifies the adaptive-weights mechanism:
// incumbent drift with and without it.
func BenchmarkChurnAblation(b *testing.B) {
	var res *eval.ChurnAblationResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunChurnAblation(eval.Fig14Options{
			Dataset: benchDataset(), Attr: dataset.ResponseTime, Seed: 1,
			PointsBefore: 3, PointsAfter: 5, StepsPerPoint: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	adaptive, fixed := res.Drifts()
	b.ReportMetric(adaptive, "adaptiveDrift")
	b.ReportMetric(fixed, "fixedDrift")
}
