package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/qoslab/amf/internal/dataset"
)

func TestQosgenWritesReadableTriplets(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rt.txt")
	err := run([]string{
		"-out", out, "-attr", "RT",
		"-users", "6", "-services", "10", "-slices", "4",
		"-range", "0-1", "-density", "0.5", "-seed", "7",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	attr, users, services, slices, ts, err := dataset.ReadTriplets(f)
	if err != nil {
		t.Fatal(err)
	}
	if attr != dataset.ResponseTime || users != 6 || services != 10 || slices != 4 {
		t.Fatalf("shape: %v %d %d %d", attr, users, services, slices)
	}
	if len(ts) == 0 {
		t.Fatal("no triplets written")
	}
	// ~50% density over 2 slices of 60 cells = ~60 triplets.
	if len(ts) < 30 || len(ts) > 90 {
		t.Fatalf("triplet count %d implausible for density 0.5", len(ts))
	}
	for _, tr := range ts {
		if tr.Slice > 1 {
			t.Fatalf("triplet outside requested slice range: %+v", tr)
		}
		if tr.Value <= 0 || tr.Value > 20 {
			t.Fatalf("RT value out of range: %+v", tr)
		}
	}
}

func TestQosgenDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	args := func(out string) []string {
		return []string{"-out", out, "-users", "5", "-services", "8", "-slices", "2", "-seed", "3"}
	}
	if err := run(args(a)); err != nil {
		t.Fatal(err)
	}
	if err := run(args(b)); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed must produce identical files")
	}
}

func TestQosgenFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"bad attr":        {"-attr", "XX"},
		"bad range":       {"-range", "x-y"},
		"reversed range":  {"-range", "3-1"},
		"range too large": {"-slices", "2", "-range", "0-5"},
		"bad density":     {"-density", "0"},
		"density over 1":  {"-density", "1.5"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange("2-5")
	if err != nil || lo != 2 || hi != 5 {
		t.Fatalf("parseRange(2-5) = %d,%d,%v", lo, hi, err)
	}
	lo, hi, err = parseRange("7")
	if err != nil || lo != 7 || hi != 7 {
		t.Fatalf("parseRange(7) = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := parseRange("-1-2"); err == nil {
		t.Fatal("negative range should error")
	}
}
