// Command qosgen materializes the synthetic WS-DREAM-like QoS dataset to
// disk in the triplet text format, for consumption by external tools or
// the examples:
//
//	qosgen -out rtdata.txt -attr RT -slices 0-3 -density 0.3
//	qosgen -out tpdata.txt -attr TP -users 142 -services 4500
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/qoslab/amf/internal/dataset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qosgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qosgen", flag.ContinueOnError)
	var (
		out      = fs.String("out", "", "output file (default stdout)")
		attrFlag = fs.String("attr", "RT", "attribute: RT or TP")
		users    = fs.Int("users", 142, "number of users")
		services = fs.Int("services", 4500, "number of services")
		slices   = fs.Int("slices", 64, "number of time slices in the dataset")
		rng      = fs.String("range", "0-0", "slice range to emit, inclusive (e.g. 0-3)")
		density  = fs.Float64("density", 1, "fraction of cells to emit per slice (0,1]")
		seed     = fs.Int64("seed", 2014, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var attr dataset.Attribute
	switch strings.ToUpper(*attrFlag) {
	case "RT":
		attr = dataset.ResponseTime
	case "TP":
		attr = dataset.Throughput
	default:
		return fmt.Errorf("unknown attribute %q", *attrFlag)
	}
	lo, hi, err := parseRange(*rng)
	if err != nil {
		return err
	}
	if *density <= 0 || *density > 1 {
		return fmt.Errorf("density %g out of (0,1]", *density)
	}

	cfg := dataset.DefaultConfig()
	cfg.Users, cfg.Services, cfg.Slices, cfg.Seed = *users, *services, *slices, *seed
	gen, err := dataset.New(cfg)
	if err != nil {
		return err
	}
	if hi >= cfg.Slices {
		return fmt.Errorf("slice range %d-%d exceeds dataset slices %d", lo, hi, cfg.Slices)
	}

	sampler := rand.New(rand.NewSource(*seed + 1))
	var triplets []dataset.Triplet
	for t := lo; t <= hi; t++ {
		for i := 0; i < cfg.Users; i++ {
			for j := 0; j < cfg.Services; j++ {
				if *density < 1 && sampler.Float64() >= *density {
					continue
				}
				triplets = append(triplets, dataset.Triplet{
					User: i, Service: j, Slice: t,
					Value: gen.Value(attr, i, j, t),
				})
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteTriplets(w, attr, cfg.Users, cfg.Services, cfg.Slices, triplets); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qosgen: wrote %d triplets (%s, slices %d-%d, density %.2f)\n",
		len(triplets), attr, lo, hi, *density)
	return nil
}

func parseRange(s string) (lo, hi int, err error) {
	loS, hiS, ok := strings.Cut(s, "-")
	if !ok {
		hiS = loS
	}
	if lo, err = strconv.Atoi(strings.TrimSpace(loS)); err != nil {
		return 0, 0, fmt.Errorf("bad slice range %q", s)
	}
	if hi, err = strconv.Atoi(strings.TrimSpace(hiS)); err != nil {
		return 0, 0, fmt.Errorf("bad slice range %q", s)
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("bad slice range %d-%d", lo, hi)
	}
	return lo, hi, nil
}
