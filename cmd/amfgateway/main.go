// Command amfgateway fronts a user-sharded cluster of amfserver
// replicas: it consistent-hashes users across shard groups, proxies the
// prediction API to the right group (writes to the leader, reads
// round-robin), fans large ranking queries out across a group's
// replicas, and — with -failover — promotes a follower when a group's
// leader dies.
//
//	amfgateway -addr :8080 \
//	  -shard http://s0a:8081,http://s0b:8082 \
//	  -shard http://s1a:8083,http://s1b:8084 \
//	  -failover
//
// Each -shard lists one group's replicas (leader first by convention;
// the gateway discovers actual roles by probing). Clients speak the
// same /api/v1 JSON API to the gateway that they would to a single
// amfserver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/qoslab/amf/internal/cluster"
	"github.com/qoslab/amf/internal/obs"
)

// shardList collects repeatable -shard flags, each a comma-separated
// replica URL list for one group.
type shardList [][]string

func (s *shardList) String() string {
	parts := make([]string, len(*s))
	for i, grp := range *s {
		parts[i] = strings.Join(grp, ",")
	}
	return strings.Join(parts, " ")
}

func (s *shardList) Set(v string) error {
	var urls []string
	for _, u := range strings.Split(v, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return fmt.Errorf("replica %q: URL must start with http:// or https://", u)
		}
		urls = append(urls, u)
	}
	if len(urls) == 0 {
		return errors.New("empty shard group")
	}
	*s = append(*s, urls)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amfgateway:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amfgateway", flag.ContinueOnError)
	var shards shardList
	fs.Var(&shards, "shard", "one shard group's replica URLs, comma-separated (repeatable; at least one required)")
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		vnodes    = fs.Int("vnodes", 128, "virtual nodes per shard group on the hash ring")
		probeIvl  = fs.Duration("probe-interval", 500*time.Millisecond, "replica health-probe cadence")
		downAfter = fs.Int("down-after", 3, "consecutive probe failures before a replica is marked down")
		failover  = fs.Bool("failover", false, "promote the most caught-up follower when a group's leader stays down")
		fanout    = fs.Int("fanout-threshold", 256, "candidate-set size at which rank/batch queries split across a group's replicas (-1 disables)")
		edgeShed  = fs.Bool("slo-edge-shed", false, "refuse sheddable-class requests at the gateway when the target shard group reports saturation (429 + Retry-After)")
		shedThr   = fs.Float64("slo-shed-threshold", 0.5, "group shed rate (max over healthy replicas, probed) at which edge shedding kicks in")
		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn, or error")
		logFormat = fs.String("log-format", "text", "log format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	if len(shards) == 0 {
		return errors.New("at least one -shard group is required")
	}

	gw, err := cluster.New(cluster.Config{
		Groups:          shards,
		VNodes:          *vnodes,
		ProbeInterval:   *probeIvl,
		DownAfter:       *downAfter,
		Failover:        *failover,
		FanOutThreshold: *fanout,
		EdgeShed:        *edgeShed,
		ShedThreshold:   *shedThr,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	defer gw.Close()
	gw.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	logger.Info("amfgateway starting",
		"version", obs.BuildVersion(), "commit", obs.BuildCommit(),
		"addr", *addr, "groups", len(shards), "vnodes", *vnodes,
		"probe_interval", *probeIvl, "down_after", *downAfter,
		"failover", *failover, "fanout_threshold", *fanout,
		"slo_edge_shed", *edgeShed, "slo_shed_threshold", *shedThr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
