// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark runs can be archived and
// diffed across commits (see BENCH_rank.json and `make bench-rank`).
//
//	go test -run=NONE -bench=BenchmarkTopK -benchmem ./internal/core/ | benchjson -o BENCH_rank.json
//
// Reading from stdin and writing to stdout are the defaults; non-benchmark
// lines (build noise, PASS/ok trailers) are ignored, while the goos /
// goarch / pkg / cpu headers are captured as metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	// Extra holds custom metrics reported via testing.B.ReportMetric
	// (e.g. "p50-ns/op" percentile latencies), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Document is the archived benchmark run.
type Document struct {
	GeneratedAt string            `json:"generated_at"`
	Meta        map[string]string `json:"meta,omitempty"`
	Results     []Result          `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	indent := flag.Bool("indent", true, "pretty-print the JSON")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	if *indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Document, error) {
	doc := &Document{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Meta:        map[string]string{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				doc.Meta[k] = strings.TrimSpace(v)
			}
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue // malformed or truncated line; skip, don't fail the run
			}
			doc.Results = append(doc.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkTopK/heap/10k-8   1278   392513 ns/op   0 B/op   0 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || ns <= 0 {
		return Result{}, false
	}
	res := Result{
		// Strip the trailing -GOMAXPROCS suffix for stable names.
		Name:      trimProcSuffix(fields[0]),
		Runs:      runs,
		NsPerOp:   ns,
		OpsPerSec: 1e9 / ns,
	}
	for i := 4; i+1 < len(fields); i += 2 {
		val := fields[i]
		switch fields[i+1] {
		case "B/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = &n
			}
		case "allocs/op":
			if n, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = &n
			}
		case "MB/s":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				res.MBPerSec = f
			}
		default:
			// Custom units from testing.B.ReportMetric.
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[fields[i+1]] = f
			}
		}
	}
	return res, true
}

// trimProcSuffix removes the "-N" GOMAXPROCS suffix go test appends to
// benchmark names, keeping subbenchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
