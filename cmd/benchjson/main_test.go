package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/qoslab/amf/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTopK/legacy_rank_sort/10k-8         	     153	   3878181 ns/op	      88 B/op	       3 allocs/op
BenchmarkTopK/heap/10k-8                     	    1278	    392513 ns/op	       0 B/op	       0 allocs/op
BenchmarkDotBatch/rows=10000/batch-8         	    2000	    500000 ns/op	1600.00 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	github.com/qoslab/amf/internal/core	10.807s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Meta["goos"] != "linux" || doc.Meta["cpu"] == "" {
		t.Fatalf("meta not captured: %v", doc.Meta)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(doc.Results))
	}
	r := doc.Results[1]
	if r.Name != "BenchmarkTopK/heap/10k" {
		t.Fatalf("proc suffix not trimmed: %q", r.Name)
	}
	if r.Runs != 1278 || r.NsPerOp != 392513 {
		t.Fatalf("numbers: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields: %+v", r)
	}
	if got := r.OpsPerSec; got < 2547 || got > 2548 {
		t.Fatalf("ops/sec = %g", got)
	}
	if doc.Results[2].MBPerSec != 1600 {
		t.Fatalf("MB/s: %+v", doc.Results[2])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("expected error for input without benchmark lines")
	}
}

func TestParseBenchLineMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX 12",
		"BenchmarkX twelve 100 ns/op",
		"BenchmarkX 12 abc ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}
