package main

// amfbench -mode overload: an open-loop overload generator against an
// in-process amfserver with the SLO admission gate and the epoch
// controller enabled. It calibrates the sustainable request rate
// closed-loop, then ramps an open-loop arrival process through
// 0.5x/1x/2x/4x of it with a fixed class mix (20% critical,
// 40% standard, 40% sheddable), and reports per-class goodput, shed
// rate, and latency percentiles plus which tunables the controller
// moved — written to BENCH_overload.json (make bench-overload).
//
// The point of the exercise is the issue's acceptance bar: at 4x the
// sustainable rate with admission on, critical-class goodput stays
// >= 99% while the sheddable class absorbs the loss, and the epoch
// controller demonstrably moves >= 2 tunables.

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/qoslab/amf/internal/control"
	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/engine"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/server"
)

// overloadClasses is the generated traffic mix, by tenths of the
// request counter: 2/10 critical, 4/10 standard, 4/10 sheddable.
var overloadClasses = [10]control.Class{
	control.Critical, control.Critical,
	control.Standard, control.Standard, control.Standard, control.Standard,
	control.Sheddable, control.Sheddable, control.Sheddable, control.Sheddable,
}

// overloadStats accumulates one class's outcomes for one stage.
type overloadStats struct {
	sent atomic.Int64
	ok   atomic.Int64
	shed atomic.Int64 // 429 responses
	errs atomic.Int64 // anything else
	hist *obs.Histogram
}

// OverloadClassResult is one class's row in the stage report.
type OverloadClassResult struct {
	Sent     int64   `json:"sent"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Errors   int64   `json:"errors"`
	Goodput  float64 `json:"goodput"`   // ok / sent
	ShedRate float64 `json:"shed_rate"` // shed / sent
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// OverloadStage is one ramp step of the open-loop run.
type OverloadStage struct {
	Multiplier    float64                        `json:"multiplier"`
	TargetRPS     float64                        `json:"target_rps"`
	OfferedRPS    float64                        `json:"offered_rps"` // what the generator actually dispatched
	DurationSecs  float64                        `json:"duration_secs"`
	ClientDropped int64                          `json:"client_dropped"` // generator semaphore overflow, not server sheds
	Classes       map[string]OverloadClassResult `json:"classes"`
	RejectionRate float64                        `json:"controller_rejection_rate"` // controller's view at stage end
}

// OverloadTunable records one tunable's travel across the run.
type OverloadTunable struct {
	Name     string  `json:"name"`
	Baseline float64 `json:"baseline"`
	Before   float64 `json:"before"`
	After    float64 `json:"after"`
	Moved    bool    `json:"moved"`
}

// OverloadReport is BENCH_overload.json.
type OverloadReport struct {
	Mode              string            `json:"mode"`
	CalibratedRPS     float64           `json:"calibrated_rps"`
	BatchPerRequest   int               `json:"observations_per_request"`
	AdmissionEnabled  bool              `json:"admission_enabled"`
	AdaptEpochMs      float64           `json:"adapt_epoch_ms"`
	Stages            []OverloadStage   `json:"stages"`
	Tunables          []OverloadTunable `json:"tunables"`
	TunablesMoved     int               `json:"tunables_moved"`
	ControllerEpochs  int64             `json:"controller_epochs"`
	ControllerAdjusts int64             `json:"controller_adjustments"`
	CriticalGoodput4x float64           `json:"critical_goodput_4x"`
	SheddableShed4x   float64           `json:"sheddable_shed_rate_4x"`
}

// runOverload drives the whole experiment and writes the JSON report.
func runOverload(seed int64, stageDur time.Duration, out string) error {
	const obsPerReq = 16
	cfg := core.DefaultConfig(-0.007, 0, 20)
	cfg.Expiry = 0
	cfg.Seed = seed
	model, err := core.New(cfg)
	if err != nil {
		return err
	}
	eng := engine.New(model, engine.Config{QueueSize: 512})
	svc := server.NewWithEngine(eng,
		server.WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	defer svc.Close()
	adaptEpoch := 250 * time.Millisecond
	svc.EnableAdmission(server.AdmissionConfig{
		BudgetStandard:  25 * time.Millisecond,
		BudgetSheddable: 5 * time.Millisecond,
	})
	svc.StartAdaptation(server.AdaptationConfig{Epoch: adaptEpoch})
	h := svc.Handler()

	// Pre-marshal a pool of distinct observe bodies so the generator's
	// own cost stays far below the server's per-request cost.
	bodies := makeObserveBodies(256, obsPerReq)

	// Warm up (registers the users/services, seeds the latency
	// histograms the gate's cost model reads), then calibrate the
	// sustainable rate closed-loop: a few workers issuing back-to-back
	// standard-class requests approximate the service capacity without
	// queue growth.
	doOne := func(i int, class control.Class, st *overloadStats) {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/observe",
			strings.NewReader(bodies[i%len(bodies)]))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(control.ClassHeader, class.String())
		rec := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(rec, req)
		if st == nil {
			return
		}
		st.hist.ObserveDuration(time.Since(start))
		st.sent.Add(1)
		switch {
		case rec.Code == http.StatusOK:
			st.ok.Add(1)
		case rec.Code == http.StatusTooManyRequests:
			st.shed.Add(1)
		default:
			st.errs.Add(1)
		}
	}
	for i := 0; i < 512; i++ {
		doOne(i, control.Standard, nil)
	}
	calibrated := calibrateRate(doOne, 700*time.Millisecond)
	fmt.Printf("overload: calibrated sustainable rate %.0f req/s (%d observations each)\n",
		calibrated, obsPerReq)

	ctl := eng.Control()
	before := snapshotTunables(ctl)

	multipliers := []float64{0.5, 1, 2, 4}
	report := OverloadReport{
		Mode:             "overload",
		CalibratedRPS:    calibrated,
		BatchPerRequest:  obsPerReq,
		AdmissionEnabled: true,
		AdaptEpochMs:     float64(adaptEpoch.Milliseconds()),
	}
	for _, mult := range multipliers {
		stage := runOverloadStage(doOne, svc, calibrated*mult, mult, stageDur)
		report.Stages = append(report.Stages, stage)
		fmt.Printf("  %3.1fx: offered %.0f req/s  critical goodput %.4f  standard shed %.3f  sheddable shed %.3f\n",
			mult, stage.OfferedRPS,
			stage.Classes["critical"].Goodput,
			stage.Classes["standard"].ShedRate,
			stage.Classes["sheddable"].ShedRate)
	}

	// Tunable travel: compare each tunable's final value against where
	// it stood after warmup. The controller keeps running between
	// stages, so this is the honest "did adaptation act" record.
	after := snapshotTunables(ctl)
	for _, t := range ctl.List() {
		b, a := before[t.Name()], after[t.Name()]
		moved := relDiff(a, b) > 1e-9
		report.Tunables = append(report.Tunables, OverloadTunable{
			Name: t.Name(), Baseline: t.BaselineFloat(), Before: b, After: a, Moved: moved,
		})
		if moved {
			report.TunablesMoved++
		}
	}
	if c := svc.Controller(); c != nil {
		report.ControllerEpochs = c.Epochs()
		report.ControllerAdjusts = c.Adjustments()
	}
	last := report.Stages[len(report.Stages)-1]
	report.CriticalGoodput4x = last.Classes["critical"].Goodput
	report.SheddableShed4x = last.Classes["sheddable"].ShedRate

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("overload: %d/%d tunables moved, %d controller epochs, %d adjustments\n",
		report.TunablesMoved, len(report.Tunables), report.ControllerEpochs, report.ControllerAdjusts)
	fmt.Printf("overload: critical goodput at 4x = %.4f, sheddable shed rate at 4x = %.3f\n",
		report.CriticalGoodput4x, report.SheddableShed4x)
	fmt.Printf("wrote %s\n", out)
	return nil
}

// calibrateRate measures the closed-loop service rate: NumCPU/2 (min 2)
// workers issuing standard-class requests back to back for dur.
func calibrateRate(doOne func(int, control.Class, *overloadStats), dur time.Duration) float64 {
	workers := 4
	st := &overloadStats{hist: obs.NewHistogram(1e-6, 60, 8)}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
					doOne(i, control.Standard, st)
				}
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(st.ok.Load()) / elapsed
}

// runOverloadStage dispatches an open-loop arrival process at target
// requests/second for dur: requests launch on schedule regardless of
// how many are still in flight (a semaphore far above the admitted
// concurrency bounds memory; overflow is counted, not blocked on).
func runOverloadStage(doOne func(int, control.Class, *overloadStats), svc *server.Server,
	target, mult float64, dur time.Duration) OverloadStage {
	stats := map[control.Class]*overloadStats{}
	for _, c := range control.Classes() {
		stats[c] = &overloadStats{hist: obs.NewHistogram(1e-6, 60, 8)}
	}
	sem := make(chan struct{}, 16384)
	var wg sync.WaitGroup
	var dropped atomic.Int64
	start := time.Now()
	dispatched := 0
	for {
		elapsed := time.Since(start)
		if elapsed >= dur {
			break
		}
		due := int(elapsed.Seconds() * target)
		for ; dispatched < due; dispatched++ {
			class := overloadClasses[dispatched%10]
			select {
			case sem <- struct{}{}:
			default:
				dropped.Add(1)
				continue
			}
			wg.Add(1)
			go func(i int, class control.Class) {
				defer wg.Done()
				defer func() { <-sem }()
				doOne(i, class, stats[class])
			}(dispatched, class)
		}
		time.Sleep(500 * time.Microsecond)
	}
	offered := time.Since(start)
	wg.Wait()
	stage := OverloadStage{
		Multiplier:    mult,
		TargetRPS:     target,
		OfferedRPS:    float64(dispatched) / offered.Seconds(),
		DurationSecs:  offered.Seconds(),
		ClientDropped: dropped.Load(),
		Classes:       map[string]OverloadClassResult{},
		RejectionRate: svc.ShedRate(),
	}
	for _, c := range control.Classes() {
		st := stats[c]
		sent := st.sent.Load()
		res := OverloadClassResult{
			Sent: sent, OK: st.ok.Load(), Shed: st.shed.Load(), Errors: st.errs.Load(),
			P50Ms: st.hist.Quantile(0.5) * 1e3,
			P99Ms: st.hist.Quantile(0.99) * 1e3,
		}
		if sent > 0 {
			res.Goodput = float64(res.OK) / float64(sent)
			res.ShedRate = float64(res.Shed) / float64(sent)
		}
		stage.Classes[c.String()] = res
	}
	return stage
}

// makeObserveBodies pre-marshals n distinct observe request bodies of
// batch observations each, over a rotating 64x64 user/service square.
func makeObserveBodies(n, batch int) []string {
	out := make([]string, n)
	k := 0
	for i := range out {
		obsList := make([]server.Observation, batch)
		for j := range obsList {
			obsList[j] = server.Observation{
				User:    fmt.Sprintf("ou%d", k%64),
				Service: fmt.Sprintf("os%d", (k*7+3)%64),
				Value:   0.5 + float64(k%40)/10,
			}
			k++
		}
		buf, err := json.Marshal(server.ObserveRequest{Observations: obsList})
		if err != nil {
			panic(err)
		}
		out[i] = string(buf)
	}
	return out
}

// snapshotTunables captures every registered tunable's float view.
func snapshotTunables(ctl *control.Registry) map[string]float64 {
	out := map[string]float64{}
	for _, t := range ctl.List() {
		out[t.Name()] = t.Float()
	}
	return out
}

// relDiff is |a-b| scaled by max(|a|,|b|,1).
func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m < 1 {
		m = 1
	}
	return d / m
}
