package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/stream"
)

// runTrainScaling is amfbench's `-mode train` entry point: it drives the
// parallel trainer over the synthetic observation stream at worker
// counts 1, 2, 4, 8 (plus the Hogwild variant at the widest width) and
// prints the samples/sec scaling curve. workers=1 is the exact serial
// path, so the speedup column is measured, not modeled. A probe-set MRE
// column shows the widths reach matched accuracy on the same stream.
//
// The curve only bends upward on multicore hosts — GOMAXPROCS is printed
// so single-core runs are self-explaining: there, every width serializes
// and the deltas are fan-out overhead plus scheduler noise.
func runTrainScaling(ds dataset.Config, attr dataset.Attribute, seed int64) error {
	gen, err := dataset.New(ds)
	if err != nil {
		return err
	}

	// Materialize the observation stream: every (user, service) pair in
	// every slice, slice-timestamped, in an interleaved order
	// (consecutive samples hit different users) like real traffic.
	const maxSamples = 2_000_000
	perSlice := ds.Users * ds.Services
	slices := ds.Slices
	if perSlice*slices > maxSamples {
		slices = maxSamples / perSlice
		if slices == 0 {
			slices = 1
		}
	}
	samples := make([]stream.Sample, 0, perSlice*slices)
	for t := 0; t < slices; t++ {
		at := gen.SliceTime(t)
		for k := 0; k < perSlice; k++ {
			u := k % ds.Users
			s := (k*7 + k/ds.Users) % ds.Services
			samples = append(samples, stream.Sample{
				Time: at, User: u, Service: s,
				Value: gen.Value(attr, u, s, t),
			})
		}
	}

	// Probe set for the matched-accuracy column: a deterministic sample
	// of pairs scored against the last ingested slice's ground truth.
	probeMRE := func(m *core.Model) float64 {
		var sum float64
		var n int
		for i := 0; i < 2000; i++ {
			u, s := (i*13)%ds.Users, (i*131)%ds.Services
			got, err := m.Predict(u, s)
			if err != nil {
				continue
			}
			truth := gen.Value(attr, u, s, slices-1)
			sum += math.Abs(got-truth) / truth
			n++
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}

	const batch = 4096 // emulates one engine drain quantum
	type row struct {
		label      string
		workers    int
		unsync     bool
		rate       float64
		mre        float64
		contention int64
	}
	rows := []row{
		{label: "1 (serial)", workers: 1},
		{label: "2", workers: 2},
		{label: "4", workers: 4},
		{label: "8", workers: 8},
		{label: "8 (hogwild)", workers: 8, unsync: true},
	}
	for i := range rows {
		r := &rows[i]
		rmin, rmax := attr.Range()
		cfg := core.DefaultConfig(attr.DefaultAlpha(), rmin, rmax)
		cfg.Seed = seed
		m := core.MustNew(cfg)
		tr := core.NewTrainer(m, core.TrainerConfig{Workers: r.workers, Unsynchronized: r.unsync})
		start := time.Now()
		for lo := 0; lo < len(samples); lo += batch {
			hi := lo + batch
			if hi > len(samples) {
				hi = len(samples)
			}
			tr.Apply(samples[lo:hi])
		}
		r.rate = float64(len(samples)) / time.Since(start).Seconds()
		r.mre = probeMRE(m)
		r.contention = tr.Metrics().StripeContention.Value()
		tr.Close()
	}

	fmt.Printf("parallel training throughput: attr=%s, %d samples (%d users x %d services x %d slices), GOMAXPROCS=%d\n\n",
		attr, len(samples), ds.Users, ds.Services, slices, runtime.GOMAXPROCS(0))
	fmt.Printf("%-14s %14s %9s %11s %12s\n", "workers", "samples/s", "speedup", "probe MRE", "contention")
	base := rows[0].rate
	for _, r := range rows {
		fmt.Printf("%-14s %14.0f %8.2fx %11.3f %12d\n",
			r.label, r.rate, r.rate/base, r.mre, r.contention)
	}
	return nil
}
