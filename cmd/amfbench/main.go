// Command amfbench regenerates every table and figure of the paper's
// evaluation section against the synthetic dataset:
//
//	amfbench -exp all                 # everything at the default scale
//	amfbench -exp table1,fig13 -attr RT -scale small -rounds 5
//	amfbench -exp table1 -scale paper # the full 142x4500 shape (slow)
//
// Experiments: stats fig2 fig7 fig8 fig9 table1 fig10 fig11 fig12 fig13
// fig14 weights params slices prequential floor adaptation.
//
// A second mode measures the parallel training path instead of
// reproducing the paper's figures:
//
//	amfbench -mode train -scale small  # samples/sec at 1/2/4/8 workers
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/qoslab/amf/internal/adapt"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amfbench:", err)
		os.Exit(1)
	}
}

var allExperiments = []string{
	"stats", "fig2", "fig7", "fig8", "fig9", "table1",
	"fig10", "fig11", "fig12", "fig13", "fig14", "weights", "params", "slices", "prequential", "floor", "adaptation",
}

func run(args []string) error {
	fs := flag.NewFlagSet("amfbench", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "exp", "exp (paper experiments), train (parallel-training throughput scaling curve), or overload (open-loop overload ramp against the SLO admission gate)")
		expFlag   = fs.String("exp", "all", "comma-separated experiments, or 'all'")
		scaleFlag = fs.String("scale", "small", "dataset scale: tiny, small, or paper")
		attrFlag  = fs.String("attr", "both", "QoS attribute: RT, TP, or both")
		rounds    = fs.Int("rounds", 3, "rounds per configuration (paper uses 20)")
		seed      = fs.Int64("seed", 2014, "master random seed")
		csvDir    = fs.String("csv", "", "directory to also write machine-readable CSV results into")
		outFlag   = fs.String("o", "BENCH_overload.json", "output path for -mode overload's JSON report")
		stageDur  = fs.Duration("stage-duration", 2*time.Second, "duration of each -mode overload ramp stage")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
	}

	ds, err := scaleConfig(*scaleFlag, *seed)
	if err != nil {
		return err
	}
	attrs, err := parseAttrs(*attrFlag)
	if err != nil {
		return err
	}
	switch *mode {
	case "exp":
		// fall through to the experiment loop below
	case "train":
		return runTrainScaling(ds, attrs[0], *seed)
	case "overload":
		return runOverload(*seed, *stageDur, *outFlag)
	default:
		return fmt.Errorf("unknown mode %q (want exp, train, or overload)", *mode)
	}
	exps := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		exps = allExperiments
	}

	fmt.Printf("dataset: %d users x %d services x %d slices (scale=%s, seed=%d)\n\n",
		ds.Users, ds.Services, ds.Slices, *scaleFlag, *seed)
	for _, exp := range exps {
		exp = strings.TrimSpace(exp)
		if exp == "" {
			continue
		}
		start := time.Now()
		if err := runExperiment(exp, ds, attrs, *rounds, *seed, *csvDir); err != nil {
			return fmt.Errorf("%s: %w", exp, err)
		}
		fmt.Printf("[%s completed in %v]\n\n", exp, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func scaleConfig(scale string, seed int64) (dataset.Config, error) {
	cfg := dataset.DefaultConfig()
	cfg.Seed = seed
	switch scale {
	case "paper":
		// 142 x 4500 x 64 as in the paper (Fig. 6).
	case "small":
		cfg.Users, cfg.Services, cfg.Slices = 100, 1000, 16
	case "tiny":
		cfg.Users, cfg.Services, cfg.Slices = 30, 150, 8
	default:
		return cfg, fmt.Errorf("unknown scale %q (want tiny, small, or paper)", scale)
	}
	return cfg, nil
}

func parseAttrs(s string) ([]dataset.Attribute, error) {
	switch strings.ToUpper(s) {
	case "RT":
		return []dataset.Attribute{dataset.ResponseTime}, nil
	case "TP":
		return []dataset.Attribute{dataset.Throughput}, nil
	case "BOTH":
		return []dataset.Attribute{dataset.ResponseTime, dataset.Throughput}, nil
	default:
		return nil, fmt.Errorf("unknown attribute %q (want RT, TP, or both)", s)
	}
}

func runExperiment(exp string, ds dataset.Config, attrs []dataset.Attribute, rounds int, seed int64, csvDir string) error {
	switch exp {
	case "stats":
		return runStats(ds)
	case "fig2":
		return runFig2(ds)
	case "fig7":
		return runFig7(ds)
	case "fig8":
		return runFig8(ds)
	case "fig9":
		return runFig9(ds)
	case "table1":
		return runTable1(ds, attrs, rounds, seed, csvDir)
	case "fig10":
		return runFig10(ds, attrs, seed)
	case "fig11":
		return runFig11(ds, attrs, rounds, seed, csvDir)
	case "fig12":
		return runFig12(ds, attrs, rounds, seed, csvDir)
	case "fig13":
		return runFig13(ds, attrs, seed, csvDir)
	case "fig14":
		return runFig14(ds, attrs, seed, csvDir)
	case "params":
		return runParams(ds, attrs, rounds, seed, csvDir)
	case "slices":
		return runSlices(ds, attrs, seed)
	case "weights":
		return runWeightsAblation(ds, attrs, seed)
	case "prequential":
		return runPrequential(ds, attrs, seed)
	case "floor":
		return runFloor(ds, attrs, seed)
	case "adaptation":
		return runAdaptation(ds, seed)
	default:
		return fmt.Errorf("unknown experiment (known: %s)", strings.Join(allExperiments, " "))
	}
}

// writeCSVFile writes one result's CSV into csvDir (no-op when empty).
func writeCSVFile(csvDir, name string, write func(io.Writer) error) error {
	if csvDir == "" {
		return nil
	}
	path := filepath.Join(csvDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("(csv written to %s)\n", path)
	return nil
}

func runStats(ds dataset.Config) error {
	g, err := dataset.New(ds)
	if err != nil {
		return err
	}
	fmt.Println("== Data statistics (paper Fig. 6) ==")
	fmt.Print(g.SampleStatistics(4, 20000))
	return nil
}

func runFig2(ds dataset.Config) error {
	g, err := dataset.New(ds)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 2(a): RT of one user-service pair across time slices ==")
	series := eval.Fig2a(g, 0, 0)
	for t, v := range series {
		fmt.Printf("slice %2d: %6.3f s  %s\n", t, v, bar(v, 10, 40))
	}
	fmt.Println("\n== Fig. 2(b): sorted RT of 100 users invoking one service ==")
	users := eval.Fig2b(g, 1, 0, 100)
	for i, v := range users {
		if i%10 == 0 || i == len(users)-1 {
			fmt.Printf("user rank %3d: %6.3f s  %s\n", i, v, bar(v, 10, 40))
		}
	}
	return nil
}

func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func runFig7(ds dataset.Config) error {
	g, err := dataset.New(ds)
	if err != nil {
		return err
	}
	rt, tp := eval.Fig7(g, 25, 4, 20000)
	fmt.Println("== Fig. 7: raw data distributions (highly skewed) ==")
	fmt.Println("Response time (cut at 10 s):")
	fmt.Print(rt.Render(40))
	fmt.Println("Throughput (cut at 150 kbps):")
	fmt.Print(tp.Render(40))
	return nil
}

func runFig8(ds dataset.Config) error {
	g, err := dataset.New(ds)
	if err != nil {
		return err
	}
	rt, tp, err := eval.Fig8(g, 25, 4, 20000)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 8: transformed data distributions (Box-Cox + normalize) ==")
	fmt.Println("Response time (alpha = -0.007):")
	fmt.Print(rt.Render(40))
	fmt.Println("Throughput (alpha = -0.05):")
	fmt.Print(tp.Render(40))
	for _, attr := range []dataset.Attribute{dataset.ResponseTime, dataset.Throughput} {
		before, after, err := eval.SkewReduction(g, attr, 20000)
		if err != nil {
			return err
		}
		fmt.Printf("%s |skewness|: %.2f raw -> %.2f transformed\n", attr, before, after)
	}
	return nil
}

func runFig9(ds dataset.Config) error {
	g, err := dataset.New(ds)
	if err != nil {
		return err
	}
	rt, tp, err := eval.Fig9(g, 50)
	if err != nil {
		return err
	}
	fmt.Println("== Fig. 9: sorted normalized singular values (low-rank evidence) ==")
	fmt.Printf("%4s %10s %10s\n", "id", "RT", "TP")
	for i := range rt {
		fmt.Printf("%4d %10.4f %10.4f\n", i+1, rt[i], tp[i])
	}
	return nil
}

func runTable1(ds dataset.Config, attrs []dataset.Attribute, rounds int, seed int64, csvDir string) error {
	fmt.Println("== Table I: accuracy comparison ==")
	for _, attr := range attrs {
		res, err := eval.RunTable1(eval.Table1Options{
			Dataset: ds, Attr: attr, Rounds: rounds, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(res)
		if err := writeCSVFile(csvDir, fmt.Sprintf("table1_%s.csv", attr), res.WriteCSV); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig10(ds dataset.Config, attrs []dataset.Attribute, seed int64) error {
	fmt.Println("== Fig. 10: distribution of prediction errors (density 10%) ==")
	for _, attr := range attrs {
		res, err := eval.RunFig10(eval.Fig10Options{Dataset: ds, Attr: attr, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("%s: share of errors within +/-0.5:\n", attr)
		for _, name := range res.Order {
			fmt.Printf("  %-6s %.3f\n", name, res.CenterMass(name, 0.5))
		}
	}
	return nil
}

func runFig11(ds dataset.Config, attrs []dataset.Attribute, rounds int, seed int64, csvDir string) error {
	fmt.Println("== Fig. 11: impact of data transformation (MRE) ==")
	for _, attr := range attrs {
		res, err := eval.RunFig11(eval.Fig11Options{Dataset: ds, Attr: attr, Rounds: rounds, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(res)
		if err := writeCSVFile(csvDir, fmt.Sprintf("fig11_%s.csv", attr), res.WriteCSV); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig12(ds dataset.Config, attrs []dataset.Attribute, rounds int, seed int64, csvDir string) error {
	fmt.Println("== Fig. 12: impact of matrix density (5%..50%) ==")
	for _, attr := range attrs {
		res, err := eval.RunFig12(eval.Fig12Options{Dataset: ds, Attr: attr, Rounds: rounds, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(res)
		if err := writeCSVFile(csvDir, fmt.Sprintf("fig12_%s.csv", attr), res.WriteCSV); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig13(ds dataset.Config, attrs []dataset.Attribute, seed int64, csvDir string) error {
	fmt.Println("== Fig. 13: per-slice convergence time ==")
	slices := ds.Slices
	if slices > 16 {
		slices = 16
	}
	for _, attr := range attrs {
		res, err := eval.RunFig13(eval.Fig13Options{Dataset: ds, Attr: attr, Slices: slices, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("%s (seconds per slice):\n", attr)
		fmt.Printf("%6s %10s %10s %10s %10s\n", "slice", "UIPCC", "PMF", "AMF", "AMF-epochs")
		for t := 0; t < res.Slices; t++ {
			fmt.Printf("%6d %10.3f %10.3f %10.3f %10d\n",
				t, res.Seconds["UIPCC"][t], res.Seconds["PMF"][t], res.Seconds["AMF"][t], res.AMFEpochs[t])
		}
		for name, s := range res.SpeedupAfterWarmup() {
			fmt.Printf("AMF speedup over %s after warmup: %.1fx\n", name, s)
		}
		if err := writeCSVFile(csvDir, fmt.Sprintf("fig13_%s.csv", attr), res.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func runFig14(ds dataset.Config, attrs []dataset.Attribute, seed int64, csvDir string) error {
	fmt.Println("== Fig. 14: scalability under churn (80% existing, 20% joining) ==")
	for _, attr := range attrs {
		res, err := eval.RunFig14(eval.Fig14Options{Dataset: ds, Attr: attr, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n%10s %8s %12s %12s\n", attr, "steps", "t(s)", "existingMRE", "newMRE")
		for _, p := range res.Points {
			newMRE := "-"
			if p.AfterJoin {
				newMRE = fmt.Sprintf("%.3f", p.NewMRE)
			}
			fmt.Printf("%10d %8.2f %12.3f %12s\n", p.Steps, p.Seconds, p.ExistingMRE, newMRE)
		}
		first, last, drift := res.NewcomerConvergence()
		fmt.Printf("newcomer MRE %.3f -> %.3f; incumbent drift %.1f%%\n", first, last, drift*100)
		if err := writeCSVFile(csvDir, fmt.Sprintf("fig14_%s.csv", attr), res.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func runParams(ds dataset.Config, attrs []dataset.Attribute, rounds int, seed int64, csvDir string) error {
	fmt.Println("== Parameter sweeps (supplementary: impact of d, lambda, eta, beta) ==")
	for _, attr := range attrs {
		res, err := eval.RunParamSweep(eval.ParamSweepOptions{Dataset: ds, Attr: attr, Rounds: rounds, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(res)
		if err := writeCSVFile(csvDir, fmt.Sprintf("params_%s.csv", attr), res.WriteCSV); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runSlices(ds dataset.Config, attrs []dataset.Attribute, seed int64) error {
	fmt.Println("== Supplementary: per-slice accuracy across the full trace ==")
	slices := ds.Slices
	if slices > 16 {
		slices = 16
	}
	for _, attr := range attrs {
		res, err := eval.RunSliceSeries(eval.SliceSeriesOptions{
			Dataset: ds, Attr: attr, Slices: slices, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Print(res)
		fmt.Println()
	}
	return nil
}

func runPrequential(ds dataset.Config, attrs []dataset.Attribute, seed int64) error {
	fmt.Println("== Prequential (test-then-train) online accuracy ==")
	slices := ds.Slices
	if slices > 16 {
		slices = 16
	}
	for _, attr := range attrs {
		res, err := eval.RunPrequential(eval.PrequentialOptions{Dataset: ds, Attr: attr, Slices: slices, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(res)
		fmt.Println()
	}
	return nil
}

func runWeightsAblation(ds dataset.Config, attrs []dataset.Attribute, seed int64) error {
	fmt.Println("== Adaptive-weights churn ablation (DESIGN.md decision #3) ==")
	for _, attr := range attrs {
		res, err := eval.RunChurnAblation(eval.Fig14Options{Dataset: ds, Attr: attr, Seed: seed})
		if err != nil {
			return err
		}
		a, f := res.Drifts()
		fmt.Printf("%s: incumbent drift after churn: adaptive=%.1f%% fixed=%.1f%%\n", attr, a*100, f*100)
	}
	return nil
}

func runFloor(ds dataset.Config, attrs []dataset.Attribute, seed int64) error {
	fmt.Println("== Noise floor: AMF vs. an oracle that knows every pair's true mean ==")
	for _, attr := range attrs {
		res, err := eval.RunFloor(eval.FloorOptions{Dataset: ds, Attr: attr, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("%s: oracle MRE %.3f NPRE %.3f | AMF MRE %.3f NPRE %.3f | gap %.2fx\n",
			attr, res.Oracle.MRE, res.Oracle.NPRE, res.AMF.MRE, res.AMF.NPRE, res.GapMRE())
	}
	return nil
}

func runAdaptation(ds dataset.Config, seed int64) error {
	fmt.Println("== Runtime service adaptation (framework Sec. III end to end) ==")
	res, err := adapt.RunSimulation(adapt.SimulationOptions{Dataset: ds, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("workflow: %d tasks x %d candidates, SLA %.1f s/task\n",
		len(res.Workflow.Tasks), len(res.Workflow.Tasks[0].Candidates), res.Workflow.Tasks[0].SLA)
	fmt.Printf("%-10s %12s %14s %12s\n", "strategy", "meanLatency", "violationRate", "adaptations")
	for _, s := range res.Strategies {
		fmt.Printf("%-10s %11.3fs %14.3f %12d\n", s.Name, s.MeanLatency, s.ViolationRate, s.Adaptations)
	}
	return nil
}
