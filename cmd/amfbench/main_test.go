package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, readErr := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if readErr != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := f()
	w.Close()
	out := <-done
	r.Close()
	return out, runErr
}

func TestRunStatsAndFigures(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-exp", "stats,fig2,fig9", "-scale", "tiny"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#Users", "Fig. 2(a)", "singular values", "stats completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable1Tiny(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-exp", "table1", "-scale", "tiny", "-attr", "RT", "-rounds", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"UPCC", "AMF", "Improve."} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
}

func TestRunAdaptationTiny(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-exp", "adaptation", "-scale", "tiny"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static", "predicted", "oracle"} {
		if !strings.Contains(out, want) {
			t.Errorf("adaptation output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad scale":      {"-scale", "galactic"},
		"bad attr":       {"-attr", "JITTER"},
		"bad experiment": {"-exp", "fig99", "-scale", "tiny"},
	}
	for name, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestScaleConfigs(t *testing.T) {
	paper, err := scaleConfig("paper", 1)
	if err != nil {
		t.Fatal(err)
	}
	if paper.Users != 142 || paper.Services != 4500 || paper.Slices != 64 {
		t.Fatalf("paper scale = %+v", paper)
	}
	tiny, err := scaleConfig("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Users >= paper.Users {
		t.Fatal("tiny should be smaller than paper")
	}
}

func TestParseAttrs(t *testing.T) {
	both, err := parseAttrs("both")
	if err != nil || len(both) != 2 {
		t.Fatalf("both = %v, %v", both, err)
	}
	rt, err := parseAttrs("rt")
	if err != nil || len(rt) != 1 {
		t.Fatalf("rt = %v, %v", rt, err)
	}
	if _, err := parseAttrs("xx"); err == nil {
		t.Fatal("bad attr should error")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	_, err := captureStdout(t, func() error {
		return run([]string{"-exp", "table1", "-scale", "tiny", "-attr", "RT", "-rounds", "1", "-csv", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1_RT.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "attr,approach,density") {
		t.Fatalf("csv content: %s", data)
	}
}

func TestRunExtensionExperiments(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-exp", "weights,floor,prequential,slices", "-scale", "tiny", "-attr", "RT"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"incumbent drift after churn",
		"oracle MRE",
		"prequential (test-then-train)",
		"per-slice MRE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig14Tiny(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-exp", "fig14", "-scale", "tiny", "-attr", "RT"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "newcomer MRE") {
		t.Errorf("fig14 output missing summary:\n%s", out)
	}
}
