// Command amfserver runs the QoS prediction service (framework Fig. 3):
// an HTTP/JSON endpoint that collects observed QoS data from service
// users, keeps an AMF model updated online, and serves predictions for
// candidate-service selection.
//
//	amfserver -addr :8080 -attr RT
//	curl -XPOST localhost:8080/api/v1/observe -d '{"observations":[{"user":"u1","service":"s1","value":1.4}]}'
//	curl 'localhost:8080/api/v1/predict?user=u1&service=s1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/qoslab/amf/internal/core"
	"github.com/qoslab/amf/internal/dataset"
	"github.com/qoslab/amf/internal/engine"
	"github.com/qoslab/amf/internal/ingest"
	"github.com/qoslab/amf/internal/matrix"
	"github.com/qoslab/amf/internal/obs"
	"github.com/qoslab/amf/internal/qosdb"
	"github.com/qoslab/amf/internal/server"
	"github.com/qoslab/amf/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "amfserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("amfserver", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		attrFlag = fs.String("attr", "RT", "QoS attribute served: RT or TP")
		expiry   = fs.Duration("expiry", 15*time.Minute, "observation expiry (paper: one 15-minute slice)")
		replay   = fs.Duration("replay-interval", 100*time.Millisecond, "background replay tick")
		batch    = fs.Int("replay-batch", 500, "replay updates per tick")
		seed     = fs.Int64("seed", 1, "model seed")
		state    = fs.String("state", "", "legacy state file: restored at startup if present, saved on shutdown (prefer -data-dir)")
		wal      = fs.String("wal", "", "QoS database directory; observations are appended and replayed at startup (a legacy text WAL file is converted in place)")
		ingestAt = fs.String("ingest", "", "optional TCP stream-ingest address (e.g. :9090) for line-format observations")

		dataDir     = fs.String("data-dir", "", "durable-state directory: WAL journaling, periodic checkpoints, crash recovery (mutually exclusive with -state)")
		fsyncPolicy = fs.String("fsync", "interval", "WAL fsync policy: always (acked = durable, one fsync per observe), group (acked = durable, concurrent observes share one fsync), interval (bounded loss), or off")
		snapIvl     = fs.Duration("snapshot-interval", time.Minute, "background checkpoint cadence for -data-dir")
		walSegBytes = fs.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = 64 MiB default)")
		groupWindow = fs.Duration("fsync-group-window", 0, "-fsync group max-latency bound: a buffered append is fsynced no later than this (0 = 1ms default)")
		groupBytes  = fs.Int64("fsync-group-bytes", 0, "-fsync group early-fsync trigger: fsync once this many bytes are buffered (0 = 1 MiB default)")

		role       = fs.String("role", "leader", "cluster role: leader (serves writes) or follower (replicates a leader's WAL, read-only until promoted)")
		leaderURL  = fs.String("leader", "", "leader base URL to replicate from (follower role, required)")
		leaderData = fs.String("leader-data", "", "leader's durable data directory on shared storage; lets promotion recover to the exact durable tail (follower role, optional)")
		replWait   = fs.Duration("repl-wait", 5*time.Second, "follower long-poll hold time per WAL fetch")

		queue        = fs.Int("queue", 0, "ingest queue slots per shard (0 = engine default)")
		trainWorkers = fs.Int("train-workers", 1, "parallel SGD training workers (rounded down to a power of two, max 64); 1 keeps the serial deterministic writer")
		rankPar      = fs.Int("rank-parallel-threshold", 4096, "candidate-set size at which /api/v1/rank fans out across cores (<=0 disables)")
		publishIvl   = fs.Duration("publish-interval", 0, "max staleness of the published read view (0 = engine default)")
		publishEach  = fs.Int("publish-every", 0, "republish the read view after this many model updates (0 = engine default)")
		arenaPrec    = fs.String("arena-precision", "f64", "published view factor-arena precision: f64, or f32 (half the rank-scan memory traffic, ~1e-7 relative rounding at publish)")
		coalesceWin  = fs.Duration("rank-coalesce-window", 0, "batch concurrent full-scan /api/v1/rank requests arriving within this window into one arena pass (0 disables)")
		coalesceMax  = fs.Int("rank-coalesce-max", 16, "max full-scan rank requests per coalesced batch (a full batch flushes before the window expires)")

		sloAdmit     = fs.Bool("slo-admission", false, "enable the SLO admission gate on observe/predict/rank (class header X-Amf-Slo-Class; critical is never shed)")
		sloBudgetStd = fs.Duration("slo-budget-standard", 2*time.Second, "predicted-wait budget for standard-class requests (with -slo-admission)")
		sloBudgetShd = fs.Duration("slo-budget-sheddable", 250*time.Millisecond, "predicted-wait budget for sheddable-class requests (with -slo-admission)")
		sloHeadroom  = fs.Float64("slo-headroom", 1.0, "multiplier on class budgets: admit while predicted wait <= budget*headroom (with -slo-admission)")
		adaptEpoch   = fs.Duration("adapt-epoch", 0, "epoch-controller period: each epoch adapts engine tunables to the observed rejection rate and queue wait (0 disables adaptation)")

		logLevel   = fs.String("log-level", "info", "log level: debug, info, warn, or error")
		logFormat  = fs.String("log-format", "text", "log format: text or json")
		pprofFlag  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		metrCompat = fs.Bool("metrics-compat", false, "also expose deprecated metric names (amf_uptime_ms) on /metrics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}

	var attr dataset.Attribute
	switch strings.ToUpper(*attrFlag) {
	case "RT":
		attr = dataset.ResponseTime
	case "TP":
		attr = dataset.Throughput
	default:
		return fmt.Errorf("unknown attribute %q", *attrFlag)
	}
	rmin, rmax := attr.Range()
	cfg := core.DefaultConfig(attr.DefaultAlpha(), rmin, rmax)
	cfg.Expiry = *expiry
	cfg.Seed = *seed
	model, err := core.New(cfg)
	if err != nil {
		return err
	}

	var arenaF32 bool
	switch *arenaPrec {
	case "f64":
	case "f32":
		arenaF32 = true
	default:
		return fmt.Errorf("unknown arena precision %q (want f64 or f32)", *arenaPrec)
	}

	eng := engine.New(model, engine.Config{
		QueueSize:       *queue,
		PublishInterval: *publishIvl,
		PublishEvery:    *publishEach,
		TrainWorkers:    *trainWorkers,
		ArenaFloat32:    arenaF32,
	})
	svc := server.NewWithEngine(eng, server.WithLogger(logger))
	defer svc.Close()
	svc.MetricsCompat = *metrCompat
	svc.RankParallelThreshold = *rankPar
	svc.RankCoalesceWindow = *coalesceWin
	svc.RankCoalesceMax = *coalesceMax
	if *pprofFlag {
		svc.EnablePprof()
	}
	if *sloAdmit {
		svc.EnableAdmission(server.AdmissionConfig{
			BudgetStandard:  *sloBudgetStd,
			BudgetSheddable: *sloBudgetShd,
			Headroom:        *sloHeadroom,
		})
	}
	if *adaptEpoch > 0 {
		svc.StartAdaptation(server.AdaptationConfig{Epoch: *adaptEpoch})
	}
	if *dataDir != "" && *state != "" {
		return errors.New("-data-dir and -state are mutually exclusive (the data directory subsumes the state file)")
	}
	follower := false
	switch *role {
	case "leader":
		if *leaderURL != "" || *leaderData != "" {
			return errors.New("-leader/-leader-data only apply to -role follower")
		}
	case "follower":
		follower = true
		if *leaderURL == "" {
			return errors.New("-role follower requires -leader")
		}
		if *dataDir != "" {
			return errors.New("-role follower is incompatible with -data-dir (durability lives on the leader; use -leader-data for shared-storage promotion)")
		}
	default:
		return fmt.Errorf("unknown role %q (want leader or follower)", *role)
	}
	sync, err := store.ParseSyncPolicy(*fsyncPolicy)
	if err != nil {
		return err
	}
	var mgr *store.Manager
	if *dataDir != "" {
		mgr, err = store.Open(*dataDir, store.Options{
			SegmentBytes:       *walSegBytes,
			Sync:               sync,
			GroupWindow:        *groupWindow,
			GroupBytes:         *groupBytes,
			CheckpointInterval: *snapIvl,
			Logger:             logger,
		})
		if err != nil {
			return err
		}
		defer mgr.Close()
		// Recover (checkpoint restore + WAL tail replay through the normal
		// observe path), attach the journal, start the checkpointer — in
		// that order, so replayed work is not re-journaled.
		rs, err := svc.AttachDurable(mgr)
		if err != nil {
			return fmt.Errorf("recover %s: %w", *dataDir, err)
		}
		logger.Info("durable state ready", "dir", *dataDir,
			"fsync", sync.String(), "snapshot_interval", *snapIvl,
			"recovered_samples", rs.Samples, "checkpoint_seq", rs.CheckpointSeq)
	}
	if *state != "" {
		if data, err := os.ReadFile(*state); err == nil {
			if err := svc.LoadState(data); err != nil {
				return fmt.Errorf("restore state from %s: %w", *state, err)
			}
			logger.Info("restored state", "path", *state)
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("read state file: %w", err)
		}
	}
	if *wal != "" {
		db, err := qosdb.OpenWithOptions(*wal, qosdb.Options{
			Sync:         sync,
			SegmentBytes: *walSegBytes,
			Logger:       logger,
		})
		if err != nil {
			return err
		}
		defer db.Close()
		svc.SetStore(db)
		// With -data-dir the engine recovers from its own journal; feeding
		// the QoS database's history in again would double-train replayed
		// samples.
		if mgr == nil {
			if n := svc.ReplayStore(-1); n > 0 {
				logger.Info("replayed observations from WAL", "count", n, "path", *wal)
			}
		}
	}
	if follower {
		// Bootstrap from the leader's snapshot, then tail its WAL. The
		// store options only matter at promotion time, when the follower
		// re-opens the leader's durable directory as its own.
		if _, err := svc.StartFollower(server.FollowerConfig{
			Leader:     *leaderURL,
			LeaderData: *leaderData,
			StoreOptions: store.Options{
				SegmentBytes:       *walSegBytes,
				Sync:               sync,
				GroupWindow:        *groupWindow,
				GroupBytes:         *groupBytes,
				CheckpointInterval: *snapIvl,
				Logger:             logger,
			},
			WaitMS: int(replWait.Milliseconds()),
		}); err != nil {
			return fmt.Errorf("start follower: %w", err)
		}
		logger.Info("following leader", "leader", *leaderURL, "leader_data", *leaderData)
	}
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Full slow-client protection: bound the header read, the whole
		// request (large observe/snapshot uploads included), the response
		// write, and how long an idle keep-alive connection may pin a
		// file descriptor.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *ingestAt != "" {
		ln, err := ingest.Listen(*ingestAt, svc)
		if err != nil {
			return err
		}
		defer ln.Close()
		go func() {
			if err := ln.Serve(ctx); err != nil {
				logger.Error("ingest listener failed", "err", err)
			}
		}()
		logger.Info("stream ingest listening", "addr", ln.Addr().String())
	}
	go svc.RunReplay(ctx, *replay, *batch)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	// Effective config, one structured record: everything an operator
	// needs to reproduce this process.
	logger.Info("amfserver starting",
		"version", obs.BuildVersion(), "commit", obs.BuildCommit(),
		"addr", *addr, "attr", attr.String(),
		"rank", cfg.Rank, "eta", cfg.LearnRate, "beta", cfg.Beta, "alpha", cfg.Alpha,
		"expiry", *expiry, "replay_interval", *replay, "replay_batch", *batch,
		"queue", *queue, "train_workers", eng.TrainWorkers(),
		"publish_interval", *publishIvl, "publish_every", *publishEach,
		"rank_parallel_threshold", *rankPar, "simd", matrix.SIMD(),
		"arena_precision", *arenaPrec,
		"rank_coalesce_window", *coalesceWin, "rank_coalesce_max", *coalesceMax,
		"slo_admission", *sloAdmit, "slo_budget_standard", *sloBudgetStd,
		"slo_budget_sheddable", *sloBudgetShd, "slo_headroom", *sloHeadroom,
		"adapt_epoch", *adaptEpoch,
		"role", *role, "leader", *leaderURL, "leader_data", *leaderData,
		"wal", *wal, "state", *state, "data_dir", *dataDir,
		"fsync", sync.String(), "snapshot_interval", *snapIvl, "wal_segment_bytes", *walSegBytes,
		"pprof", *pprofFlag, "metrics_compat", *metrCompat,
		"log_level", *logLevel, "log_format", *logFormat)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Drain the ingest queue before snapshotting so late stream
	// observations make it into the saved state (Close is idempotent;
	// the deferred call becomes a no-op).
	svc.Close()
	// Let in-flight replication streams finish shipping before the final
	// checkpoint truncates the WAL out from under them: followers see a
	// clean end-of-stream instead of a mid-record disconnect.
	if !svc.DrainReplication(5 * time.Second) {
		logger.Warn("replication streams did not drain before shutdown deadline")
	}
	// svc.Durable(), not the local mgr: a follower promoted at runtime
	// attached the dead leader's durable directory inside the server,
	// which the -data-dir flag path never saw.
	if m := svc.Durable(); m != nil {
		// Final checkpoint: a graceful shutdown leaves nothing for the
		// next start to replay.
		if err := m.Checkpoint(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		logger.Info("final checkpoint written", "dir", m.Dir())
		if m != mgr {
			// Promotion-attached manager: the deferred mgr.Close only
			// releases the flag-opened one.
			if err := m.Close(); err != nil {
				logger.Warn("close durable state", "err", err)
			}
		}
	}
	if *state != "" {
		data, err := svc.SaveState()
		if err != nil {
			return fmt.Errorf("snapshot state: %w", err)
		}
		if err := os.WriteFile(*state, data, 0o644); err != nil {
			return fmt.Errorf("write state file: %w", err)
		}
		logger.Info("saved state", "path", *state)
	}
	return nil
}
