package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadAttr(t *testing.T) {
	if err := run([]string{"-attr", "XX"}); err == nil {
		t.Fatal("bad attribute should error")
	}
}

func TestRunRejectsCorruptStateFile(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.bin")
	if err := os.WriteFile(state, []byte("not a state file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-state", state, "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("corrupt state should abort startup")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("unknown flag should error")
	}
}
