# Development entry points for the AMF reproduction.

GO ?= go

# Build identification, stamped into every binary's amf_build_info gauge
# (see internal/obs/buildinfo.go). Untagged trees fall back to the
# commit; non-git tarballs to "dev"/"unknown".
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS  = -X github.com/qoslab/amf/internal/obs.buildVersion=$(VERSION) \
           -X github.com/qoslab/amf/internal/obs.buildCommit=$(COMMIT)

.PHONY: all build vet test race cover bench bench-smoke bench-rank bench-train bench-recovery bench-wal bench-cluster bench-kernels bench-overload test-cluster test-overload test-noasm build-arm64 lint-metrics lint-tunables fuzz ci experiments experiments-paper examples clean

all: build vet test

# What CI runs (see .github/workflows/ci.yml): full build + vet + tests,
# the metrics-docs lint, plus the race detector over the concurrent
# internals and the observability smoke check.
ci: build vet test lint-metrics lint-tunables bench-smoke test-cluster test-overload test-noasm build-arm64
	$(GO) test -race ./internal/...

# Portable-kernel leg: the SIMD assembly (internal/matrix) ships with a
# pure-Go fallback behind the noasm build tag; this proves the fallback
# (and everything ranking on top of it) still passes, which is what
# non-amd64/arm64 targets actually run.
test-noasm:
	$(GO) test -tags noasm ./internal/matrix/ ./internal/core/

# Cross-compile leg for the NEON kernels: arm64 has no execution
# environment in CI, but the assembly must at least assemble and link.
build-arm64:
	GOOS=linux GOARCH=arm64 $(GO) build ./...

build:
	$(GO) build -ldflags "$(LDFLAGS)" ./...

# Metrics-docs lint: registers every runtime metric family (server with
# all subsystems attached, gateway, federation-derived gauges) and fails
# if any amf_* name is missing from README.md's metrics tables.
lint-metrics:
	$(GO) test -run TestMetricsDocumented ./internal/cluster/

# Tunables-docs lint: registers every control-plane tunable (engine +
# admission gate) and fails if any is missing from README.md's tunables
# table — same pattern as lint-metrics.
lint-tunables:
	$(GO) test -run TestTunablesDocumented ./internal/cluster/

# Overload-control gate: the class-contract stress tests (critical is
# never shed while sheddable is), the epoch-controller convergence
# suite, and the gateway edge-shed tests, all under the race detector.
test-overload:
	$(GO) test -race ./internal/control/
	$(GO) test -race -run 'TestAdmission|TestShedAccountingFold|TestConfigAPI|TestAdaptation' ./internal/server/
	$(GO) test -race -run 'TestGatewayEdgeShed|TestGatewayUnavailable' ./internal/cluster/

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Observability + durability smoke check: vet, the obs package under the
# race detector, the instrumentation-overhead benchmark (instrumented
# predict path must stay within 5% of the uninstrumented one), quick
# passes over the ranking fast path's kernels (DotBatch) and top-K
# selection, and the durable-state layer's hot rows (engine journaling
# tax, WAL append).
bench-smoke: vet
	$(GO) test -race ./internal/obs/
	$(GO) test -run=NONE -bench=BenchmarkPredictPath -benchtime=0.3s ./internal/server/
	$(GO) test -run=NONE -bench=BenchmarkAdmissionGate -benchtime=0.2s ./internal/server/
	$(GO) test -run=NONE -bench='BenchmarkDotBatch/paired/rows=1000$$' -benchtime=0.2s ./internal/matrix/
	$(GO) test -run=NONE -bench='BenchmarkTopK/10k' -benchmem -benchtime=0.2s ./internal/core/
	$(GO) test -run=NONE -bench='BenchmarkTrainThroughput/workers=(1|4)$$' -benchtime=0.2s ./internal/core/
	$(GO) test -run=NONE -bench='BenchmarkObserveJournal/journal=(none|interval)' -benchtime=0.2s ./internal/engine/
	$(GO) test -run=NONE -bench='BenchmarkWALAppend/(off|interval)' -benchtime=0.2s ./internal/store/
	$(GO) test -run=NONE -bench='BenchmarkWALGroupCommit/P=8$$' -benchtime=0.2s ./internal/store/

# SIMD kernel comparison (scalar vs AVX2/NEON vs float32, plus the
# blocked multi-query coalescing traversal), archived as machine-
# readable JSON (BENCH_kernels.json). Every comparison is paired-
# interleaved — arms share one timing loop — so the *-speedup-x extras
# are immune to CPU frequency drift between runs.
bench-kernels:
	$(GO) test -run=NONE -bench='BenchmarkDot$$|BenchmarkDotBatch|BenchmarkMulBatch' -benchmem -benchtime=0.5s ./internal/matrix/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_kernels.json

# Full ranking fast-path benchmark, archived as machine-readable JSON
# (BENCH_rank.json) via the benchjson parser. Compare runs across
# commits with: git diff BENCH_rank.json
bench-rank:
	$(GO) test -run=NONE -bench='BenchmarkTopK|BenchmarkPredictBatchView' -benchmem -benchtime=0.5s ./internal/core/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_rank.json

# Parallel-training throughput curve (workers = 1/2/4/8 + Hogwild +
# replay), archived as machine-readable JSON (BENCH_train.json). The
# workers=1 row is the exact serial baseline, so sub-benchmark ratios are
# the parallel speedup; on single-core hosts all widths serialize and the
# curve measures fan-out overhead instead.
bench-train:
	$(GO) test -run=NONE -bench='BenchmarkTrainThroughput' -benchmem -benchtime=0.5s ./internal/core/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_train.json

# Durable-state layer benchmarks (WAL append per fsync policy, replay,
# checkpoint, full crash-recovery path, and the engine's journaling tax),
# archived as machine-readable JSON (BENCH_recovery.json). The
# journal=interval row must stay within 10% of journal=none.
bench-recovery:
	{ $(GO) test -run=NONE -bench='BenchmarkWALAppend|BenchmarkWALReplay|BenchmarkCheckpoint|BenchmarkRecovery' -benchmem -benchtime=0.5s ./internal/store/ ; \
	  $(GO) test -run=NONE -bench='BenchmarkObserveJournal' -benchmem -benchtime=0.5s ./internal/engine/ ; } \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_recovery.json

# Group-commit write-path benchmark, archived as BENCH_wal.json: P
# concurrent writers each issuing durable appends under fsync=always
# (one fsync per record) vs fsync=group (shared covering fsync) vs
# fsync=interval (bounded-loss floor), paired-interleaved inside one
# timing loop so the group-speedup-x extras are immune to disk and CPU
# drift between arms.
bench-wal:
	$(GO) test -run=NONE -bench='BenchmarkWALGroupCommit' -benchmem -benchtime=0.5s ./internal/store/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_wal.json

# Cluster integration gate: the ring/gateway suites (including the
# SIGKILL-the-leader failover test — 1 gateway + 3 replicas in-process,
# promoted follower must serve with zero acked-sample loss) and the
# WAL-shipping replication suite, all under the race detector.
test-cluster:
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'TestFollower|TestPromote|TestReplicate|TestApplyStream|TestClusterStatus|TestSetLeader|TestStartFollower|TestDrainReplication' ./internal/server/

# User-sharded cluster benchmarks, archived as BENCH_cluster.json:
# gateway proxy overhead vs direct serving (the full-catalog ranking
# workload must stay within 15% at p50; see the p50-ns/op extras) and
# steady-state WAL-shipping replication lag (ns/op IS the lag).
bench-cluster:
	$(GO) test -run=NONE -bench='BenchmarkGateway|BenchmarkReplicationLag' -benchmem -benchtime=1s ./internal/cluster/ \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_cluster.json

# Open-loop overload ramp (0.5x/1x/2x/4x of the calibrated sustainable
# rate, 20/40/40 critical/standard/sheddable mix) against an in-process
# server with the SLO admission gate and epoch adaptation enabled,
# archived as BENCH_overload.json: per-class goodput/shed-rate/latency
# and which tunables the controller moved. The acceptance bar: critical
# goodput >= 0.99 at 4x while the sheddable class absorbs the loss.
bench-overload:
	$(GO) run ./cmd/amfbench -mode overload -o BENCH_overload.json

fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzReadTriplets -fuzztime=30s ./internal/dataset/
	$(GO) test -run=Fuzz -fuzz=FuzzParseLine -fuzztime=30s ./internal/qosdb/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeEntry -fuzztime=30s ./internal/store/

# Regenerate every table and figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/amfbench -exp all

# The paper's full 142x4500x64 shape (slow; Table I alone takes minutes).
experiments-paper:
	$(GO) run ./cmd/amfbench -exp all -scale paper -rounds 20

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adaptation
	$(GO) run ./examples/onlineserver
	$(GO) run ./examples/churn
	$(GO) run ./examples/offline
	$(GO) run ./examples/streamingest
	$(GO) run ./examples/operations

clean:
	$(GO) clean ./...
