# Development entry points for the AMF reproduction.

GO ?= go

.PHONY: all build vet test race cover bench bench-smoke fuzz ci experiments experiments-paper examples clean

all: build vet test

# What CI runs (see .github/workflows/ci.yml): full build + vet + tests,
# plus the race detector over the concurrent internals and the
# observability smoke check.
ci: build vet test bench-smoke
	$(GO) test -race ./internal/...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Observability smoke check: vet, the obs package under the race
# detector, and the instrumentation-overhead benchmark (instrumented
# predict path must stay within 5% of the uninstrumented one).
bench-smoke: vet
	$(GO) test -race ./internal/obs/
	$(GO) test -run=NONE -bench=BenchmarkPredictPath -benchtime=0.3s ./internal/server/

fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzReadTriplets -fuzztime=30s ./internal/dataset/
	$(GO) test -run=Fuzz -fuzz=FuzzParseLine -fuzztime=30s ./internal/qosdb/

# Regenerate every table and figure at the default reduced scale.
experiments:
	$(GO) run ./cmd/amfbench -exp all

# The paper's full 142x4500x64 shape (slow; Table I alone takes minutes).
experiments-paper:
	$(GO) run ./cmd/amfbench -exp all -scale paper -rounds 20

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/adaptation
	$(GO) run ./examples/onlineserver
	$(GO) run ./examples/churn
	$(GO) run ./examples/offline
	$(GO) run ./examples/streamingest
	$(GO) run ./examples/operations

clean:
	$(GO) clean ./...
